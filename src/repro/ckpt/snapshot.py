"""Capture and restore of the complete deterministic run state.

``capture(kernel)`` walks a quiescent kernel (between events, with the
tracer not pumping) and produces a picklable payload dict holding

* the host environment (with its RNG streams mid-state),
* the filesystem as a node-record table (hard links and unlinked-but-
  open inodes dedup through object identity; device nodes record their
  path so restore can graft the live read/write hooks from a freshly
  installed image),
* pipes, open file descriptions (shared across forked fd tables by
  identity) and per-process fd tables,
* process/thread records with every scheduler-visible scalar,
* the event heap (as descriptors, not closures), the parked-thread map
  and the serialization token state,
* the reproducible scheduler's heaps, the tracer's PRNG/logical-clock/
  inode-table state, fault-injector progress, obs collector, stats,
* and the resume tape (:mod:`repro.ckpt.tape`).

``restore(kernel, payload)`` inverts it into a freshly *prepared* kernel
(image installed, tracer attached, faults wired — the same code path a
normal run uses, so device closures and handler tables are live objects).
Guest generator frames are rebuilt by **fast-forward**: re-driving fresh
generators with the taped input sequence in global order.  Everything
else is overlaid directly.  Restore performs no host-RNG draws: the
host's entropy streams continue exactly from the barrier.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import pickle
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..kernel.errors import GuestCrash, SyscallError
from ..kernel.fds import FDTable, OpenFile
from ..kernel.inode import Inode
from ..kernel.ops import Syscall, VdsoCall
from ..kernel.pipes import Pipe
from ..kernel.process import Process, Thread, ThreadState
from ..kernel.waiting import Channel
from . import journal
from .tape import OPAQUE, decode_value, encode_tape, encode_value

PAYLOAD_KIND = "repro.ckpt.payload"
DELTA_KIND = "repro.ckpt.delta"

#: Every top-level payload key except the fs node table, the tape and the
#: kind marker.  These sections are rebuilt wholesale at every barrier (in
#: a deterministic discovery order, so an unchanged section is *pickle
#: byte-equal* to its previous capture); a delta snapshot carries only the
#: sections whose pickled hash moved since its base.
SECTION_KEYS = (
    "host", "clock_now", "stats", "obs", "network", "stdout", "stderr",
    "timers", "pid_next", "tid_next", "nspid_next", "seq", "cores_busy",
    "core_queue", "fs_meta", "pipes", "pipe_counter", "sockets",
    "of_records", "processes", "events", "parked", "sched", "tracer",
    "faults",
)

#: Sections that move at (virtually) every event — the clock, the event
#: heap, counters, scheduler bookkeeping, thread det-clocks.  Hashing
#: them per barrier to discover "changed" would burn a pickle only to
#: answer "yes", so deltas include them unconditionally and skip the
#: hash.  They are all small; the occasional genuinely-unchanged one
#: costs a few hundred redundant bytes, not correctness (delta sections
#: are wholesale replacements).
VOLATILE_KEYS = frozenset((
    "clock_now", "stats", "obs", "events", "sched", "tracer", "processes",
))

#: Fingerprint scopes (see :func:`state_fingerprint`).
GUEST_SCOPE = "guest"
FULL_SCOPE = "full"

#: Pickle protocol pinned for fingerprint stability: the digest of a
#: canonical state must not change when the interpreter's
#: HIGHEST_PROTOCOL does.
_FP_PROTOCOL = 4


class CheckpointUnsupported(RuntimeError):
    """The run holds state a snapshot cannot represent (e.g. open
    loopback sockets, which embed live kernel callbacks)."""


class RestoreError(RuntimeError):
    """A snapshot could not be faithfully rehydrated (divergent replay,
    missing binary, unknown descriptor)."""


class DeltaUnsupported(RuntimeError):
    """The dirty set cannot be encoded against the cached base (e.g. a
    dirty device inode with no cached path).  Internal signal: the
    manager falls back to a full snapshot, never an error to the run."""


# ----------------------------------------------------------------------
# small helpers shared by capture and restore
# ----------------------------------------------------------------------

def _procfs_pos(node: Inode) -> Optional[int]:
    """Extract the procfs read-offset dict hidden in a device closure."""
    fn = node.dev_read
    cells = getattr(fn, "__closure__", None) or ()
    for cell in cells:
        try:
            v = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue
        if isinstance(v, dict) and set(v) == {"pos"}:
            return v["pos"]
    return None


def _set_procfs_pos(node: Inode, pos: int) -> None:
    fn = node.dev_read
    cells = getattr(fn, "__closure__", None) or ()
    for cell in cells:
        try:
            v = cell.cell_contents
        except ValueError:  # pragma: no cover
            continue
        if isinstance(v, dict) and set(v) == {"pos"}:
            v["pos"] = pos
            return


def _encode_call(call: Optional[Syscall]) -> Optional[Tuple]:
    if call is None:
        return None
    return ("syscall", call.name, encode_value(dict(call.args)))


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def _node_record(node: Inode, path: Optional[str]) -> Dict[str, Any]:
    """One inode as a picklable record.

    ``path`` is recorded for device nodes only (restore grafts the live
    read/write hooks from a freshly installed image by path); everything
    else is path-free so a record never goes stale under rename.
    Directory entries reference children by ``(ino, generation)`` key.
    """
    is_device = node.dev_read is not None or node.dev_write is not None
    return {
        "ino": node.ino, "kind": node.kind, "mode": node.mode,
        "uid": node.uid, "gid": node.gid, "nlink": node.nlink,
        "atime": node.atime, "mtime": node.mtime, "ctime": node.ctime,
        "data": bytes(node.data), "symlink_target": node.symlink_target,
        "generation": node.generation, "open_count": node.open_count,
        "device": is_device, "path": path if is_device else None,
        "proc_pos": _procfs_pos(node) if is_device else None,
        "fifo": (node.fifo_pipe.pipe_id
                 if node.fifo_pipe is not None else None),
        "entries": ({name: (child.ino, child.generation)
                     for name, child in node.entries.items()}
                    if node.is_dir else None),
    }


def _capture_runtime(kernel) -> Tuple[
        Dict[str, Any], Dict[Tuple[int, int], Tuple[Inode, Optional[str]]]]:
    """Build every payload section except the fs node table and the tape.

    Returns ``(sections, referenced)`` where *referenced* maps the
    ``(ino, generation)`` key of every inode reachable through runtime
    references (open descriptions, process cwds) to the live object and
    a path hint — the capture paths use it to include unlinked-but-open
    inodes the root walk cannot see.

    Discovery order is deterministic (process list order, fd-table
    insertion order, pipe ids sorted), so an unchanged section pickles
    byte-identically barrier after barrier — the property the delta
    encoder's section-hash comparison rests on.
    """
    tracer = kernel.tracer
    fs = kernel.fs

    # -- channels & pipes ------------------------------------------------
    pipes: Dict[int, Pipe] = {}
    chan_desc: Dict[Channel, Tuple] = {}

    def note_pipe(pipe: Optional[Pipe]) -> None:
        if pipe is None or pipe.pipe_id in pipes:
            return
        pipes[pipe.pipe_id] = pipe
        for nm in ("readable", "writable", "reader_arrived", "writer_arrived"):
            chan_desc[getattr(pipe, nm)] = ("pipe", pipe.pipe_id, nm)

    for proc in kernel.processes:
        chan_desc[proc.exit_channel] = ("proc_exit", proc.pid)
        chan_desc[proc.signal_channel] = ("proc_signal", proc.pid)
        for addr, ch in proc.futex_channels.items():
            chan_desc[ch] = ("futex", proc.pid, addr)
    # FIFO-backing pipes are registered on the filesystem, so discovery
    # needs no tree walk (the delta path never walks the tree).
    for node in fs.fifo_inodes():
        note_pipe(node.fifo_pipe)
    # Socket listeners: rendezvous channels keyed by their deterministic
    # (family, address) identity, plus the pipes of queued-but-unaccepted
    # connections (reachable through no fd table yet).
    for (family, addr), listener in sorted(kernel.sockets.listeners.items()):
        chan_desc[listener.accept_ready] = ("sock", family, addr,
                                            "accept_ready")
        chan_desc[listener.accept_slot] = ("sock", family, addr,
                                           "accept_slot")
        for to_server, to_client, _peer in listener.pending:
            note_pipe(to_server)
            note_pipe(to_client)

    referenced: Dict[Tuple[int, int], Tuple[Inode, Optional[str]]] = {}

    # -- open file descriptions (shared by identity across fdtables) ----
    of_records: Dict[int, Dict[str, Any]] = {}

    def visit_of(of: OpenFile) -> int:
        key = id(of)
        if key not in of_records:
            if getattr(of, "socket", None) is not None:
                # In-guest loopback/unix sockets are plain pipe-backed
                # descriptions and snapshot fine; only the fake
                # *external* network peer carries live host state.
                raise CheckpointUnsupported(
                    "open external-network socket fds cannot cross a "
                    "snapshot (peer %r)" % (of.sock_peer or of.path))
            note_pipe(of.pipe)
            note_pipe(of.peer_pipe)
            inode_key = None
            if of.inode is not None:
                inode_key = (of.inode.ino, of.inode.generation)
                if inode_key not in referenced:
                    referenced[inode_key] = (of.inode, of.path or None)
            of_records[key] = {
                "kind": of.kind, "flags": of.flags, "offset": of.offset,
                "path": of.path,
                "inode": inode_key,
                "pipe": of.pipe.pipe_id if of.pipe is not None else None,
                "peer_pipe": (of.peer_pipe.pipe_id
                              if of.peer_pipe is not None else None),
                "refcount": of.refcount, "counts_inode": of.counts_inode,
                "sock_local": of.sock_local, "sock_peer": of.sock_peer,
                "sock_family": of.sock_family, "sock_bound": of.sock_bound,
                "listener": ((of.listener.family, of.listener.address)
                             if of.listener is not None else None),
                "shut_rd": of.shut_rd, "shut_wr": of.shut_wr,
            }
        return key

    # -- processes & threads --------------------------------------------
    def chan_ref(ch: Channel) -> Tuple:
        desc = chan_desc.get(ch)
        if desc is None:
            raise CheckpointUnsupported(
                "thread waits on unknown channel %r" % ch.name)
        return desc

    plan_rules = (tuple(kernel.faults.plan.rules)
                  if kernel.faults is not None else ())

    def armed_ref(armed) -> Optional[Tuple]:
        if armed is None:
            return None
        pos = next((i for i, r in enumerate(plan_rules) if r is armed.rule),
                   None)
        if pos is None:  # pragma: no cover - rule always from the plan
            pos = plan_rules.index(armed.rule)
        return (pos, armed.pid, armed.index, armed.syscall)

    proc_records: List[Dict[str, Any]] = []
    for proc in kernel.processes:
        fdt = {fd: visit_of(of) for fd, of in proc.fdtable.items()}
        cwd_key = (proc.cwd.ino, proc.cwd.generation)
        if cwd_key not in referenced:
            referenced[cwd_key] = (proc.cwd, proc.cwd_path)
        step_queue = None
        squeue = proc.memory.get("_step_queue")
        if squeue is not None:
            step_queue = [(t.tid, encode_value(v), encode_value(e))
                          for t, v, e in squeue]
        token = getattr(proc, "_step_token", None)
        threads = []
        for th in proc.threads:
            threads.append({
                "tid": th.tid, "state": th.state,
                "cpu_time": th.cpu_time,
                "compute_since_syscall": th.compute_since_syscall,
                "pending_signals": list(th.pending_signals),
                "det_clock": th.det_clock, "det_bound": th.det_bound,
                "pending_latency": th.pending_latency,
                "token_queued": th.token_queued,
                "current_syscall_index": th.current_syscall_index,
                "obs_attempt": th.obs_attempt, "obs_faulted": th.obs_faulted,
                "signal_interrupted": getattr(th, "signal_interrupted", False),
                "io_cost": getattr(th, "_io_cost", 0.0),
                "on_core": getattr(th, "_on_core", False),
                "wait_channels": [chan_ref(ch) for ch in th.wait_channels],
                "parked_call": _encode_call(getattr(th, "_parked_call", None)),
                "cs_none": th.current_syscall is None,
                "armed": armed_ref(th.armed_fault),
            })
        proc_records.append({
            "pid": proc.pid, "nspid": proc.nspid,
            "parent": proc.parent.pid if proc.parent is not None else None,
            "children": [c.pid for c in proc.children],
            "cwd": cwd_key,
            "cwd_path": proc.cwd_path,
            "uid": proc.uid, "gid": proc.gid, "umask": proc.umask,
            "aslr_base": proc.aslr_base,
            "exit_status": proc.exit_status, "reaped": proc.reaped,
            "exe_path": proc.exe_path, "vdso_patched": proc.vdso_patched,
            "syscall_index": proc.syscall_index,
            "argv": list(proc.argv), "env": dict(proc.env),
            "sigmask": proc.memory.get("_sigmask"),
            "step_queue": step_queue,
            "step_token": token.tid if token is not None else None,
            "signals_delivered": getattr(proc, "_signals_delivered", 0),
            "pause_acks": getattr(proc, "_pause_acks", 0),
            "fdtable": fdt,
            "threads": threads,
        })

    # -- event heap (descriptors, verbatim heap order) ------------------
    events = []
    for entry in kernel._events:
        t, seq, _fn, desc = entry
        if desc is None:
            raise CheckpointUnsupported(
                "scheduled event without a descriptor: %r" % (_fn,))
        if desc[0] == "step":
            desc = ("step", desc[1], encode_value(desc[2]),
                    encode_value(desc[3]))
        events.append((t, seq, desc))

    parked = [(chan_ref(ch), [t.tid for t in ts])
              for ch, ts in kernel._parked.items()]

    # -- pipes (sorted by id: deterministic regardless of discovery) ----
    pipe_records = {
        pid: {
            "capacity": pipes[pid].capacity,
            "buffer": bytes(pipes[pid].buffer),
            "readers": pipes[pid].readers, "writers": pipes[pid].writers,
            "ever_had_reader": pipes[pid].ever_had_reader,
            "ever_had_writer": pipes[pid].ever_had_writer,
        } for pid in sorted(pipes)}

    # -- scheduler -------------------------------------------------------
    sched_rec = _capture_sched(tracer.sched) if tracer is not None else None

    # -- tracer ----------------------------------------------------------
    tracer_rec = None
    if tracer is not None:
        tracer_rec = {
            "counters": tracer.counters,
            "busy_until": tracer.busy_until,
            "span_cost": tracer._span_cost,
            "prng_state": tracer.prng.state,
            "logical": tracer.logical,
            "inodes": tracer.inodes,
            "io_state": dict(tracer.io_state),
            "last_proc": (tracer._last_proc.pid
                          if tracer._last_proc is not None else None),
        }

    # -- faults ----------------------------------------------------------
    faults_rec = None
    if kernel.faults is not None:
        inj = kernel.faults
        faults_rec = {
            "attempt": inj.attempt,
            "fired": dict(inj._fired),
            "trace": list(inj.trace),
            "transient_fired": inj.transient_fired,
        }

    sections: Dict[str, Any] = {
        "host": kernel.host,
        "clock_now": kernel.clock.now,
        "stats": kernel.stats,
        "obs": kernel.obs,
        "network": dict(kernel.network),
        "stdout": list(kernel.stdout.chunks),
        "stderr": list(kernel.stderr.chunks),
        "timers": kernel.timers,
        "pid_next": kernel._pid_next,
        "tid_next": kernel._tid_next,
        "nspid_next": kernel._nspid_next,
        "seq": kernel._seq,
        "cores_busy": kernel.cores_busy,
        "core_queue": [(t.tid, d) for t, d in kernel._core_queue],
        "fs_meta": {
            "alloc_next": fs._alloc._next,
            "alloc_free": list(fs._alloc._free),
            "alloc_gens": dict(fs._alloc._gen),
            "device_id": fs.device_id,
            "bytes_written": fs._bytes_written,
            "resolve_hits": fs.resolve_hits,
            "resolve_misses": fs.resolve_misses,
            "dirent_hits": fs.dirent_hits,
            "dirent_misses": fs.dirent_misses,
        },
        "pipes": pipe_records,
        "pipe_counter": Pipe._counter,
        "sockets": _capture_sockets(kernel.sockets),
        "of_records": of_records,
        "processes": proc_records,
        "events": events,
        "parked": parked,
        "sched": sched_rec,
        "tracer": tracer_rec,
        "faults": faults_rec,
    }
    return sections, referenced


def capture(kernel, tape_encoded: Optional[List[Tuple]] = None,
            ) -> Dict[str, Any]:
    """Serialize the complete deterministic state of *kernel*.

    Must be called at a barrier: between events, tracer not mid-pump.
    Raises :class:`CheckpointUnsupported` for state that cannot cross a
    snapshot.  Pure reads — the running kernel is never mutated.

    The node table is keyed by ``(ino, generation)``: stable across
    number recycling, so delta snapshots can reference base records
    without positional coupling.

    *tape_encoded* is the manager's incrementally-maintained encoding of
    the whole tape (one ``encode_tape`` per entry ever, instead of
    re-encoding the full history at every full snapshot); it is used
    only when its length matches the live tape.
    """
    mgr = kernel.ckpt
    if mgr is None:
        raise CheckpointUnsupported(
            "capture requires tape recording enabled from boot "
            "(ContainerConfig.checkpoint)")
    sections, referenced = _capture_runtime(kernel)
    fs = kernel.fs
    nodes: Dict[Tuple[int, int], Dict[str, Any]] = {}

    def visit(node: Inode, path: str) -> None:
        key = (node.ino, node.generation)
        if key in nodes:
            return
        nodes[key] = _node_record(node, path)
        if node.is_dir:
            base = path.rstrip("/")
            for name, child in node.entries.items():
                visit(child, base + "/" + name)

    visit(fs.root, "/")
    for key, (node, path) in referenced.items():
        if key not in nodes:
            # Unlinked-but-open inodes (and rmdir'd cwds) are unreachable
            # from the root walk; runtime references discover them.
            visit(node, path or "?")

    if tape_encoded is not None and len(tape_encoded) == len(mgr.tape):
        tape = list(tape_encoded)
    else:
        tape = encode_tape(mgr.tape)
    payload: Dict[str, Any] = {
        "kind": PAYLOAD_KIND,
        "fs_nodes": nodes,
        "fs_root": (fs.root.ino, fs.root.generation),
        "tape": tape,
    }
    payload.update(sections)
    return payload


def _section_digest(key: str, value: Any) -> str:
    """Change-detection digest of one section value.

    The host environment gets an O(1) special case: its only run-time
    mutable state is its RNG streams, every draw bumps its
    ``_state_version``, and pickling Mersenne state every barrier was
    the single most expensive hash in a delta capture."""
    if key == "host":
        version = getattr(value, "_state_version", None)
        if version is not None:
            return "host-version-%d" % version
    if key == "sockets":
        # Same O(1) trick: the registry stamps a dirty epoch on every
        # mutation, so deltas stay O(changed) for socket-free stretches.
        return "sockets-version-%d" % value["version"]
    return hashlib.sha256(pickle.dumps(value, _FP_PROTOCOL)).hexdigest()


def section_hashes(payload: Dict[str, Any]) -> Dict[str, str]:
    """Per-section change-detection digests of *payload*'s sections.

    :data:`VOLATILE_KEYS` are excluded — deltas carry them
    unconditionally, so their hashes would never be consulted."""
    return {key: _section_digest(key, payload[key])
            for key in SECTION_KEYS if key not in VOLATILE_KEYS}


def capture_delta(kernel, base_section_hashes: Dict[str, str],
                  tape_base_len: int,
                  device_paths: Dict[Tuple[int, int], str],
                  tape_encoded: Optional[List[Tuple]] = None,
                  ) -> Tuple[Dict[str, Any], Dict[str, str], int]:
    """Serialize only the state changed since the last snapshot.

    Returns ``(delta, new_section_hashes, dirty_count)``.  The delta
    carries the sections whose pickled hash moved, the records of inodes
    stamped dirty since the filesystem's last ``clear_dirty()``, the
    keys of fully-released inodes, and the tape tail past
    *tape_base_len*.  Raises :class:`DeltaUnsupported` when the dirty
    set cannot be encoded against the base (the manager then takes a
    full snapshot instead).
    """
    mgr = kernel.ckpt
    if mgr is None:
        raise CheckpointUnsupported(
            "capture requires tape recording enabled from boot "
            "(ContainerConfig.checkpoint)")
    sections, referenced = _capture_runtime(kernel)
    new_hashes: Dict[str, str] = {}
    changed: Dict[str, Any] = {}
    for key in SECTION_KEYS:
        if key in VOLATILE_KEYS:
            changed[key] = sections[key]
            continue
        digest = _section_digest(key, sections[key])
        new_hashes[key] = digest
        if base_section_hashes.get(key) != digest:
            changed[key] = sections[key]

    fs = kernel.fs

    def delta_record(node: Inode, key: Tuple[int, int],
                     path_hint: Optional[str]) -> Dict[str, Any]:
        path = None
        if node.dev_read is not None or node.dev_write is not None:
            path = device_paths.get(key, path_hint)
            if path is None:
                raise DeltaUnsupported(
                    "dirty device inode %r has no cached path" % (key,))
        return _node_record(node, path)

    dirty: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for key, node in fs.dirty_nodes().items():
        # Inclusion rule: a dirty record enters the delta iff the node is
        # still live — named, open, or held by a runtime reference (cwd /
        # open description).  This makes the materialized node set equal
        # to what a fresh full capture would enumerate.
        if node.nlink > 0 or node.open_count > 0 or key in referenced:
            dirty[key] = delta_record(node, key, None)
    dead: List[Tuple[int, int]] = []
    for key in fs.dead_keys():
        if key in referenced:
            # Released inode number, but a cwd/description still holds
            # the object (e.g. a process inside an rmdir'd directory):
            # resurrect the record instead of dropping it.
            node, path_hint = referenced[key]
            dirty[key] = delta_record(node, key, path_hint)
        elif key not in dirty:
            dead.append(key)

    if tape_encoded is not None and len(tape_encoded) == len(mgr.tape):
        tape_tail = list(tape_encoded[tape_base_len:])
    else:
        tape_tail = encode_tape(mgr.tape[tape_base_len:])
    delta: Dict[str, Any] = {
        "kind": DELTA_KIND,
        "sections": changed,
        "fs_dirty": dirty,
        "fs_dead": dead,
        "tape_from": tape_base_len,
        "tape_tail": tape_tail,
    }
    return delta, new_hashes, len(dirty) + len(dead)


def materialize_delta(base: Dict[str, Any],
                      delta: Dict[str, Any]) -> Dict[str, Any]:
    """Compose *delta* onto its materialized *base*.

    Returns a payload equivalent to a full capture at the delta's
    barrier: changed sections replace the base's wholesale, dead node
    records drop, dirty records overlay, and the tape tail extends the
    base tape.  The result feeds :func:`restore` unchanged.
    """
    if base.get("kind") != PAYLOAD_KIND:
        raise RestoreError("delta base is not a checkpoint payload")
    if delta.get("kind") != DELTA_KIND:
        raise RestoreError("not a delta snapshot record")
    if delta["tape_from"] != len(base["tape"]):
        raise RestoreError(
            "delta tape tail does not align with its base "
            "(%d != %d taped entries)"
            % (delta["tape_from"], len(base["tape"])))
    payload = dict(base)
    payload.update(delta["sections"])
    nodes = dict(base["fs_nodes"])
    for key in delta["fs_dead"]:
        nodes.pop(key, None)
    nodes.update(delta["fs_dirty"])
    payload["fs_nodes"] = nodes
    payload["tape"] = list(base["tape"]) + list(delta["tape_tail"])
    payload["kind"] = PAYLOAD_KIND
    return payload


def _capture_sockets(reg) -> Dict[str, Any]:
    """The socket registry as a plain section: addresses, the port
    counter and listener queues (pipes by id — their contents live in
    the ``pipes`` section).  Listener iteration is sorted by the
    deterministic (family, address) key, so an unchanged registry
    pickles byte-identically."""
    return {
        "version": reg.version,
        "port_next": reg.port_next,
        "bound": sorted(reg.bound),
        "listeners": [
            {"family": family, "address": addr, "backlog": l.backlog,
             "pending": [(ts.pipe_id, tc.pipe_id, peer)
                         for ts, tc, peer in l.pending]}
            for (family, addr), l in sorted(reg.listeners.items())],
    }


def _restore_sockets(srec: Optional[Dict[str, Any]],
                     pipes_by_id: Dict[int, Pipe]):
    from ..kernel.sockets import Listener, SocketRegistry

    reg = SocketRegistry()
    if srec is None:  # pre-sockets snapshot
        return reg
    reg.version = srec["version"]
    reg.port_next = srec["port_next"]
    reg.bound = {tuple(key): True for key in srec["bound"]}
    for lrec in srec["listeners"]:
        listener = Listener(lrec["family"], lrec["address"], lrec["backlog"])
        listener.pending = [(pipes_by_id[ts], pipes_by_id[tc], peer)
                            for ts, tc, peer in lrec["pending"]]
        reg.listeners[(lrec["family"], lrec["address"])] = listener
    return reg


def _capture_sched(sched) -> Optional[Dict[str, Any]]:
    from ..core.scheduler import (
        LogicalClockRefScheduler,
        LogicalClockScheduler,
        StrictQueueScheduler,
    )

    if sched is None:
        return None
    if isinstance(sched, LogicalClockScheduler):
        return {
            "kind": "logical",
            "index": [(t.tid, i) for t, i in sched._index.items()],
            "next_index": sched._next_index,
            "service_seq": sched._service_seq,
            "fail_seq": [(t.tid, s) for t, s in sched._fail_seq.items()],
            "stop_heap": [(c, i, t.tid) for c, i, t in sched._stop_heap],
            "stash": [(c, i, t.tid) for c, i, t in sched._stash],
            "bound_heap": [(b, i, t.tid, s)
                           for b, i, t, s in sched._bound_heap],
        }
    if isinstance(sched, LogicalClockRefScheduler):
        return {
            "kind": "logical-ref",
            "threads": [t.tid for t in sched._threads],
            "index": [(t.tid, i) for t, i in sched._index.items()],
            "next_index": sched._next_index,
            "service_seq": sched._service_seq,
            "fail_seq": [(t.tid, s) for t, s in sched._fail_seq.items()],
        }
    if isinstance(sched, StrictQueueScheduler):
        return {
            "kind": "strict",
            "parallel": [t.tid for t in sched.parallel],
            "runnable": [t.tid for t in sched.runnable],
            "blocked": [t.tid for t in sched.blocked],
            "probe_credit": sched._probe_credit,
        }
    raise CheckpointUnsupported(
        "unknown scheduler implementation %r" % type(sched).__name__)


# ----------------------------------------------------------------------
# fast-forward: rebuilding generator frames from the tape
# ----------------------------------------------------------------------

class _FastForward:
    """Re-drives fresh guest generators with the taped input sequence."""

    def __init__(self, kernel, threads_by_tid: Dict[int, Thread]):
        self.kernel = kernel
        self.threads = threads_by_tid
        #: Last op each tid yielded (live object, real callables intact).
        self.last_op: Dict[int, Any] = {}
        #: Last op that would have been *dispatched* as a syscall.
        self.last_dispatchable: Dict[int, Syscall] = {}
        #: Old-disposition value of the most recent sigaction per tid —
        #: the substitution source for OPAQUE tape values.
        self.pending_override: Dict[int, Any] = {}
        self.done: set = set()
        #: The tape in live (unencoded) form, to seed the resumed
        #: manager so later snapshots keep working.
        self.live_tape: List[Tuple] = []

    def _thread(self, tid: int) -> Thread:
        th = self.threads.get(tid)
        if th is None:
            raise RestoreError("tape references unknown tid %d" % tid)
        return th

    def _sub(self, tid: int) -> Callable[[], Any]:
        def sub():
            if tid not in self.pending_override:
                raise RestoreError(
                    "opaque tape value for tid %d with no sigaction "
                    "old-disposition to substitute" % tid)
            return self.pending_override[tid]
        return sub

    def _drive(self, th: Thread, value: Any, exc: Optional[BaseException]) -> None:
        tid = th.tid
        if tid in self.done:
            return
        if not th.gen_stack:
            raise RestoreError("send to tid %d before its spawn entry" % tid)
        gen = th.gen_stack[-1]
        try:
            if exc is not None:
                op = gen.throw(exc)
            else:
                op = gen.send(value)
        except StopIteration:
            if len(th.gen_stack) > 1:
                th.gen_stack.pop()
                saved = th.process.memory.get("_saved_%d" % tid) or []
                if saved:
                    saved.pop()
                return
            self.done.add(tid)
            return
        except (GuestCrash, SyscallError):
            self.done.add(tid)
            return
        except BaseException as err:
            raise RestoreError(
                "fast-forward diverged for tid %d: guest raised %s: %s"
                % (tid, type(err).__name__, err))
        self.last_op[tid] = op
        if isinstance(op, Syscall):
            self.last_dispatchable[tid] = op
        elif isinstance(op, VdsoCall):
            self.last_dispatchable[tid] = Syscall(op.name, dict(op.args))

    def run(self, tape: List[Tuple]) -> None:
        k = self.kernel
        for entry in tape:
            kind = entry[0]
            if kind == "send":
                _, tid, enc = entry
                th = self._thread(tid)
                value = decode_value(enc, self._sub(tid))
                self.live_tape.append(("send", tid, value))
                self._drive(th, value, None)
            elif kind == "throw":
                _, tid, enc = entry
                th = self._thread(tid)
                exc = decode_value(enc, self._sub(tid))
                self.live_tape.append(("throw", tid, exc))
                self._drive(th, None, exc)
            elif kind == "push":
                _, tid, signum, enc_v, enc_e = entry
                th = self._thread(tid)
                action = th.process.signal_handlers.get(signum)
                if not callable(action):
                    raise RestoreError(
                        "push of signal %d for tid %d but handler is %r"
                        % (signum, tid, action))
                v = decode_value(enc_v, self._sub(tid))
                e = decode_value(enc_e, self._sub(tid))
                th.process.memory.setdefault(
                    "_saved_%d" % tid, []).append((v, e))
                th.gen_stack.append(action(k.make_sys(th), signum))
                self.live_tape.append(("push", tid, signum, v, e))
            elif kind == "spawn":
                _, tid, path, argv, env = entry
                th = self._thread(tid)
                proc = th.process
                proc.argv = list(argv)
                proc.env = dict(env)
                proc.exe_path = path
                factory = k.binaries.get(path)
                if factory is None:
                    raise RestoreError("binary %r not in image" % path)
                th.gen_stack = [factory(k.make_sys(th))]
                self.live_tape.append(entry)
            elif kind == "exec":
                _, tid, path, argv, env = entry
                th = self._thread(tid)
                proc = th.process
                proc.argv = list(argv)
                proc.env = dict(env)
                proc.exe_path = path
                proc.memory.pop("_saved_%d" % tid, None)
                factory = k.binaries.get(path)
                if factory is None:
                    raise RestoreError("binary %r not in image" % path)
                th.gen_stack = [factory(k.make_sys(th))]
                self.done.discard(tid)
                self.live_tape.append(entry)
            elif kind == "tspawn":
                _, tid, caller_tid = entry
                th = self._thread(tid)
                op = self.last_op.get(caller_tid)
                if not isinstance(op, Syscall) or "func" not in op.args:
                    raise RestoreError(
                        "tspawn for tid %d: caller %d not suspended at "
                        "spawn_thread" % (tid, caller_tid))
                th.gen_stack = [op.args["func"](k.make_sys(th))]
                self.live_tape.append(entry)
            elif kind == "sigact":
                _, tid, signum = entry
                th = self._thread(tid)
                op = self.last_op.get(tid)
                if not isinstance(op, Syscall) or op.name != "sigaction":
                    raise RestoreError(
                        "sigact for tid %d but last op is %r" % (tid, op))
                proc = th.process
                old = proc.signal_handlers.get(signum, "default")
                proc.signal_handlers[signum] = op.args.get("action")
                self.pending_override[tid] = old
                self.live_tape.append(entry)
            else:
                raise RestoreError("unknown tape entry kind %r" % kind)


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------

def restore(kernel, payload: Dict[str, Any]) -> List[Tuple]:
    """Rehydrate *payload* into a freshly prepared *kernel*.

    The kernel must have been prepared exactly as for a normal run of
    the same config: image installed, tracer attached, fault plan
    wired.  Returns the live resume tape (for the resumed run's own
    checkpoint manager).  Raises :class:`RestoreError` on divergence.
    """
    if payload.get("kind") != PAYLOAD_KIND:
        raise RestoreError("not a checkpoint payload")
    tracer = kernel.tracer

    # -- plain overlays --------------------------------------------------
    kernel.clock.now = payload["clock_now"]
    kernel.stats = payload["stats"]
    kernel.obs = payload["obs"]
    if tracer is not None:
        tracer.obs = kernel.obs
    kernel.network = dict(payload["network"])
    kernel.stdout.chunks[:] = list(payload["stdout"])
    kernel.stderr.chunks[:] = list(payload["stderr"])
    kernel.timers = payload["timers"]
    kernel._pid_next = payload["pid_next"]
    kernel._tid_next = payload["tid_next"]
    kernel._nspid_next = payload["nspid_next"]
    kernel._seq = payload["seq"]

    # -- pipes -----------------------------------------------------------
    pipes_by_id: Dict[int, Pipe] = {}
    for pid_, rec in payload["pipes"].items():
        p = Pipe.__new__(Pipe)
        p.pipe_id = pid_
        p.capacity = rec["capacity"]
        p.buffer = bytearray(rec["buffer"])
        p.readers = rec["readers"]
        p.writers = rec["writers"]
        p.readable = Channel("pipe%d.readable" % pid_)
        p.writable = Channel("pipe%d.writable" % pid_)
        p.reader_arrived = Channel("pipe%d.reader_arrived" % pid_)
        p.writer_arrived = Channel("pipe%d.writer_arrived" % pid_)
        p.ever_had_reader = rec["ever_had_reader"]
        p.ever_had_writer = rec["ever_had_writer"]
        pipes_by_id[pid_] = p
    Pipe._counter = payload["pipe_counter"]

    # -- socket registry (before of_records: listener identity) ---------
    kernel.sockets = _restore_sockets(payload.get("sockets"), pipes_by_id)

    # -- filesystem ------------------------------------------------------
    fs = kernel.fs
    fresh_devices: Dict[str, Inode] = {}
    for path, node in fs.walk():
        if node.dev_read is not None or node.dev_write is not None:
            fresh_devices[path] = node
    recs = payload["fs_nodes"]
    objs: Dict[Tuple[int, int], Inode] = {}
    for key, rec in recs.items():
        node = Inode(ino=rec["ino"], kind=rec["kind"], mode=rec["mode"],
                     uid=rec["uid"], gid=rec["gid"], nlink=rec["nlink"],
                     atime=rec["atime"], mtime=rec["mtime"],
                     ctime=rec["ctime"], data=bytearray(rec["data"]),
                     symlink_target=rec["symlink_target"],
                     generation=rec["generation"])
        if rec["open_count"]:
            node.open_count = rec["open_count"]
        if rec["fifo"] is not None:
            node.fifo_pipe = pipes_by_id[rec["fifo"]]
        if rec["device"]:
            fresh = fresh_devices.get(rec["path"])
            if fresh is None:
                raise RestoreError(
                    "device %r in snapshot has no counterpart in the "
                    "freshly installed image" % rec["path"])
            node.dev_read = fresh.dev_read
            node.dev_write = fresh.dev_write
            if rec["proc_pos"] is not None:
                _set_procfs_pos(node, rec["proc_pos"])
        objs[key] = node
    for key, rec in recs.items():
        if rec["entries"] is not None:
            objs[key].entries = {name: objs[tuple(ckey)]
                                 for name, ckey in rec["entries"].items()}
    fs.root = objs[tuple(payload["fs_root"])]
    meta = payload["fs_meta"]
    fs._alloc._next = meta["alloc_next"]
    fs._alloc._free = list(meta["alloc_free"])
    fs._alloc._gen = dict(meta["alloc_gens"])
    fs.device_id = meta["device_id"]
    fs._bytes_written = meta["bytes_written"]
    fs.resolve_hits = meta["resolve_hits"]
    fs.resolve_misses = meta["resolve_misses"]
    fs.dirent_hits = meta["dirent_hits"]
    fs.dirent_misses = meta["dirent_misses"]
    # Identity-keyed caches cannot survive object replacement.
    fs._namei_cache.clear()
    fs._namei_epoch_seen = Inode.namei_epoch
    # Re-arm dirty tracking over the rebuilt objects: the resumed run's
    # checkpoint manager starts from a full snapshot anyway, so the
    # dirty set starts empty and FIFO registrations are rebuilt.
    fs.reset_dirty_state(objs.values())

    # -- open file descriptions -----------------------------------------
    ofs_by_id: Dict[int, OpenFile] = {}
    for ofid, rec in payload["of_records"].items():
        of = OpenFile(
            kind=rec["kind"], flags=rec["flags"], offset=rec["offset"],
            path=rec["path"],
            inode=(None if rec["inode"] is None
                   else objs[tuple(rec["inode"])]),
            pipe=None if rec["pipe"] is None else pipes_by_id[rec["pipe"]],
            refcount=rec["refcount"],
            peer_pipe=(None if rec["peer_pipe"] is None
                       else pipes_by_id[rec["peer_pipe"]]),
            counts_inode=rec["counts_inode"],
            sock_local=rec.get("sock_local", ""),
            sock_peer=rec.get("sock_peer", ""),
            sock_family=rec.get("sock_family", 0),
            sock_bound=rec.get("sock_bound", False),
            shut_rd=rec.get("shut_rd", False),
            shut_wr=rec.get("shut_wr", False))
        lkey = rec.get("listener")
        if lkey is not None:
            of.listener = kernel.sockets.lookup(lkey[0], lkey[1])
            if of.listener is None:
                raise RestoreError(
                    "listening fd %r has no registry entry" % rec["path"])
        ofs_by_id[ofid] = of

    # -- processes & threads (shells first; frames come from replay) ----
    procs_by_pid: Dict[int, Process] = {}
    threads_by_tid: Dict[int, Thread] = {}
    kernel.processes = []
    for prec in payload["processes"]:
        proc = Process(pid=prec["pid"], nspid=prec["nspid"], parent=None,
                       root=fs.root, cwd=objs[tuple(prec["cwd"])],
                       cwd_path=prec["cwd_path"], env={}, argv=[],
                       uid=prec["uid"], gid=prec["gid"],
                       aslr_base=prec["aslr_base"])
        proc.exit_status = prec["exit_status"]
        proc.reaped = prec["reaped"]
        proc.vdso_patched = prec["vdso_patched"]
        proc.syscall_index = prec["syscall_index"]
        # Pre-umask snapshots carry no mask; the kernel default matches
        # what every process effectively had then.
        proc.umask = prec.get("umask", 0o022)
        proc.fdtable = FDTable()
        for fd, ofid in prec["fdtable"].items():
            proc.fdtable._fds[fd] = ofs_by_id[ofid]
        if prec["signals_delivered"]:
            proc._signals_delivered = prec["signals_delivered"]
        if prec["pause_acks"]:
            proc._pause_acks = prec["pause_acks"]
        for trec in prec["threads"]:
            th = Thread(tid=trec["tid"], process=proc, gen=None)
            th.gen_stack = []
            proc.threads.append(th)
            threads_by_tid[trec["tid"]] = th
        procs_by_pid[proc.pid] = proc
        kernel.processes.append(proc)
    for prec in payload["processes"]:
        proc = procs_by_pid[prec["pid"]]
        if prec["parent"] is not None:
            proc.parent = procs_by_pid[prec["parent"]]
        proc.children = [procs_by_pid[c] for c in prec["children"]]

    # -- fault injector overlay (installed fresh by the caller) ---------
    inj = kernel.faults
    frec = payload["faults"]
    if (inj is None) != (frec is None):
        raise RestoreError("fault plane presence differs from snapshot")
    if inj is not None:
        if inj.attempt != frec["attempt"]:
            raise RestoreError(
                "resume attempt %d != snapshot attempt %d"
                % (inj.attempt, frec["attempt"]))
        inj._fired = dict(frec["fired"])
        inj.trace = list(frec["trace"])
        inj.transient_fired = frec["transient_fired"]
    # Never re-fire the crash that interrupted the original run.
    kernel._kill_at = None

    # -- fast-forward replay --------------------------------------------
    ff = _FastForward(kernel, threads_by_tid)
    ff.run(payload["tape"])

    # Divergence check: replayed guest state must agree with the barrier.
    for prec in payload["processes"]:
        proc = procs_by_pid[prec["pid"]]
        if list(proc.argv) != list(prec["argv"]) or \
                dict(proc.env) != dict(prec["env"]):
            raise RestoreError(
                "fast-forward diverged for pid %d: argv/env mismatch"
                % prec["pid"])
        proc.exe_path = prec["exe_path"]

    def chan_of(desc: Tuple) -> Channel:
        k0 = desc[0]
        if k0 == "proc_exit":
            return procs_by_pid[desc[1]].exit_channel
        if k0 == "proc_signal":
            return procs_by_pid[desc[1]].signal_channel
        if k0 == "futex":
            return procs_by_pid[desc[1]].futex_channel(desc[2])
        if k0 == "pipe":
            return getattr(pipes_by_id[desc[1]], desc[2])
        if k0 == "sock":
            listener = kernel.sockets.lookup(desc[1], desc[2])
            if listener is None:
                raise RestoreError("no restored listener for %r" % (desc,))
            return getattr(listener, desc[3])
        raise RestoreError("unknown channel descriptor %r" % (desc,))

    # -- thread scalar overlays -----------------------------------------
    for prec in payload["processes"]:
        proc = procs_by_pid[prec["pid"]]
        if prec["sigmask"] is not None:
            proc.memory["_sigmask"] = prec["sigmask"]
        for trec in prec["threads"]:
            th = threads_by_tid[trec["tid"]]
            tid = trec["tid"]
            th.state = trec["state"]
            th.cpu_time = trec["cpu_time"]
            th.compute_since_syscall = trec["compute_since_syscall"]
            th.pending_signals = list(trec["pending_signals"])
            th.det_clock = trec["det_clock"]
            th.det_bound = trec["det_bound"]
            th.pending_latency = trec["pending_latency"]
            th.token_queued = trec["token_queued"]
            th.current_syscall_index = trec["current_syscall_index"]
            th.obs_attempt = trec["obs_attempt"]
            th.obs_faulted = trec["obs_faulted"]
            if trec["signal_interrupted"]:
                th.signal_interrupted = True
            if trec["io_cost"]:
                th._io_cost = trec["io_cost"]
            if trec["on_core"]:
                th._on_core = True
            th.wait_channels = [chan_of(d) for d in trec["wait_channels"]]
            pc = trec["parked_call"]
            if pc is not None:
                call = Syscall(pc[1], decode_value(pc[2], ff._sub(tid)))
                th._parked_call = call
            if trec["cs_none"]:
                th.current_syscall = None
            else:
                lop = ff.last_op.get(tid)
                if isinstance(lop, Syscall):
                    # Genuinely stopped at (or stale from) this syscall;
                    # the live op keeps real callables (spawn_thread).
                    th.current_syscall = lop
                elif (isinstance(lop, VdsoCall)
                      and th.state is ThreadState.TRACE_STOP):
                    th.current_syscall = Syscall(lop.name, dict(lop.args))
                else:
                    # Stale value from an earlier dispatch: only its
                    # non-None-ness is scheduler-visible.
                    th.current_syscall = (
                        ff.last_dispatchable.get(tid)
                        or Syscall("restored-stale", {}))
            if trec["armed"] is not None:
                from ..faults.injector import ArmedFault
                pos, apid, aindex, asyscall = trec["armed"]
                th.armed_fault = ArmedFault(inj.plan.rules[pos], apid,
                                            aindex, asyscall)
        if prec["step_queue"] is not None:
            proc.memory["_step_queue"] = [
                (threads_by_tid[tid],
                 decode_value(v, ff._sub(tid)),
                 decode_value(e, ff._sub(tid)))
                for tid, v, e in prec["step_queue"]]
        if prec["step_token"] is not None:
            proc._step_token = threads_by_tid[prec["step_token"]]

    # -- event heap ------------------------------------------------------
    kernel._events = []
    for t, seq, desc in payload["events"]:
        kernel._events.append(
            (t, seq, _event_fn(kernel, desc, threads_by_tid, procs_by_pid, ff),
             _decode_desc(desc, ff)))
    # The captured array was a literal heap snapshot; order is preserved.

    kernel._parked = {}
    for desc, tids in payload["parked"]:
        kernel._parked[chan_of(desc)] = [threads_by_tid[t] for t in tids
                                         if t in threads_by_tid]

    kernel.cores_busy = payload["cores_busy"]
    kernel._core_queue = [(threads_by_tid[tid], d)
                          for tid, d in payload["core_queue"]
                          if tid in threads_by_tid]

    # -- scheduler -------------------------------------------------------
    if tracer is not None:
        _restore_sched(tracer.sched, payload["sched"], threads_by_tid)

    # -- tracer ----------------------------------------------------------
    trec = payload["tracer"]
    if (tracer is None) != (trec is None):
        raise RestoreError("tracer presence differs from snapshot")
    if tracer is not None:
        tracer.counters = trec["counters"]
        tracer.busy_until = trec["busy_until"]
        tracer._span_cost = trec["span_cost"]
        # In place: /dev/random's read hook is a bound method of this
        # exact Lfsr object (grafted above from the fresh image).
        tracer.prng.state = trec["prng_state"]
        tracer.logical = trec["logical"]
        tracer.inodes = trec["inodes"]
        tracer.io_state = dict(trec["io_state"])
        tracer._last_proc = (procs_by_pid[trec["last_proc"]]
                             if trec["last_proc"] is not None else None)
        tracer._pumping = False
        tracer._ctx_cache.clear()
        if inj is not None:
            inj.counters = tracer.counters
            inj.obs = kernel.obs

    return ff.live_tape


def _decode_desc(desc: Tuple, ff: _FastForward) -> Tuple:
    if desc[0] == "step":
        tid = desc[1]
        return ("step", tid, decode_value(desc[2], ff._sub(tid)),
                decode_value(desc[3], ff._sub(tid)))
    return desc


def _event_fn(kernel, desc: Tuple, threads: Dict[int, Thread],
              procs: Dict[int, Process], ff: _FastForward) -> Callable[[], None]:
    kind = desc[0]
    if kind == "timer":
        proc = procs[desc[1]]
        generation = desc[2]
        return lambda: kernel._fire_timer(proc, generation)
    th = threads.get(desc[1])
    if th is None:
        # The thread object was dropped (execve sibling teardown); the
        # live event would have been a no-op on the dead thread, but it
        # still consumes a tick and advances the clock.
        return lambda: None
    if kind == "step":
        tid = desc[1]
        value = decode_value(desc[2], ff._sub(tid))
        exc = decode_value(desc[3], ff._sub(tid))
        return lambda: kernel._step_or_wait(th, value, exc)
    if kind == "finish_compute":
        return lambda: kernel._finish_compute(th)
    if kind == "retry_parked":
        return lambda: kernel._retry_parked(th)
    if kind == "release_token":
        return lambda: kernel._release_token(th)
    raise RestoreError("unknown event descriptor %r" % (desc,))


def _restore_sched(sched, rec: Optional[Dict[str, Any]],
                   threads: Dict[int, Thread]) -> None:
    from ..core.scheduler import (
        LogicalClockRefScheduler,
        LogicalClockScheduler,
        StrictQueueScheduler,
    )

    if sched is None or rec is None:
        if (sched is None) != (rec is None):
            raise RestoreError("scheduler presence differs from snapshot")
        return

    def tmap(tid):
        return threads.get(tid)

    if rec["kind"] == "logical":
        if not isinstance(sched, LogicalClockScheduler):
            raise RestoreError("scheduler kind mismatch")
        sched._index = {threads[tid]: i for tid, i in rec["index"]
                        if tid in threads}
        sched._next_index = rec["next_index"]
        sched._service_seq = rec["service_seq"]
        sched._fail_seq = {threads[tid]: s for tid, s in rec["fail_seq"]
                           if tid in threads}
        # Entries for dropped thread objects were permanently stale (the
        # index check can never match again); with them filtered out the
        # remaining keys are unique, so heapify reproduces pop order.
        sched._stop_heap = [(c, i, threads[tid])
                            for c, i, tid in rec["stop_heap"]
                            if tid in threads]
        heapq.heapify(sched._stop_heap)
        sched._stash = [(c, i, threads[tid]) for c, i, tid in rec["stash"]
                        if tid in threads]
        sched._bound_heap = [(b, i, threads[tid], s)
                             for b, i, tid, s in rec["bound_heap"]
                             if tid in threads]
        heapq.heapify(sched._bound_heap)
    elif rec["kind"] == "logical-ref":
        if not isinstance(sched, LogicalClockRefScheduler):
            raise RestoreError("scheduler kind mismatch")
        sched._threads = [threads[tid] for tid in rec["threads"]
                          if tid in threads]
        sched._index = {threads[tid]: i for tid, i in rec["index"]
                        if tid in threads}
        sched._next_index = rec["next_index"]
        sched._service_seq = rec["service_seq"]
        sched._fail_seq = {threads[tid]: s for tid, s in rec["fail_seq"]
                           if tid in threads}
    elif rec["kind"] == "strict":
        if not isinstance(sched, StrictQueueScheduler):
            raise RestoreError("scheduler kind mismatch")
        from collections import deque
        sched.parallel = deque(threads[tid] for tid in rec["parallel"]
                               if tid in threads)
        sched.runnable = deque(threads[tid] for tid in rec["runnable"]
                               if tid in threads)
        sched.blocked = deque(threads[tid] for tid in rec["blocked"]
                              if tid in threads)
        sched._probe_credit = rec["probe_credit"]
    else:
        raise RestoreError("unknown scheduler record %r" % rec["kind"])


# ----------------------------------------------------------------------
# deterministic state fingerprints (repro.diag bisection, ckpt verify)
# ----------------------------------------------------------------------

#: Payload keys whose values describe the *guest-visible machine* — the
#: surface two runs of the same program must agree on tick for tick.
_GUEST_KEYS = (
    "clock_now", "network", "stdout", "stderr", "timers",
    "pid_next", "tid_next", "nspid_next", "seq",
    "cores_busy", "core_queue", "fs_root", "events",
)

#: Additional keys for :data:`FULL_SCOPE`: determinization machinery
#: internals (tracer PRNG, scheduler heaps, host RNG streams, obs
#: counters, the resume tape).  Excluded from :data:`GUEST_SCOPE` so
#: that two runs whose *configs* legitimately differ (e.g. different
#: ``prng_seed``) fingerprint equal until the first tick where the
#: difference leaks into guest-visible state — which is exactly the
#: tick divergence bisection wants to find.
_FULL_KEYS = ("host", "stats", "obs", "fs_meta", "sched", "tracer",
              "faults", "tape")


def _canonical_maps(payload: Dict[str, Any],
                    ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Identity-erasing remaps for the two unstable namespaces.

    * pipe ids come from a *process-global* counter
      (``Pipe._counter``), so the Nth run in one interpreter hands out
      different ids than the first for identical state;
    * open-file-description keys are ``id(of)`` memory addresses.

    Both are remapped to dense, deterministic indices (pipes by sorted
    creation order, descriptions by capture order, which follows the
    deterministic process/fd walk).
    """
    pipe_map = {pid: i for i, pid in enumerate(sorted(payload["pipes"]))}
    of_map = {ofid: i for i, ofid in enumerate(payload["of_records"])}
    return pipe_map, of_map


def _canonical_chan(desc: Tuple, pipe_map: Dict[int, int]) -> Tuple:
    if desc and desc[0] == "pipe":
        return ("pipe", pipe_map.get(desc[1], -1), desc[2])
    return tuple(desc)


def _canonical_node(rec: Dict[str, Any],
                    pipe_map: Dict[int, int]) -> Dict[str, Any]:
    """One node record with unstable identifiers erased.

    Drops the device ``path`` hint (a restore-graft detail that a
    rename would make stale — the live name lives in the parent's
    ``entries``) and remaps the fifo pipe id.  Entries stay keyed by
    ``(ino, generation)``, which the deterministic allocator makes
    run-stable.
    """
    rec = dict(rec)
    rec.pop("path", None)
    if rec.get("fifo") is not None:
        rec["fifo"] = pipe_map.get(rec["fifo"], -1)
    return rec


def _canonical_pipes(payload: Dict[str, Any],
                     pipe_map: Dict[int, int]) -> List[Tuple]:
    return [(pipe_map[pid], payload["pipes"][pid])
            for pid in sorted(payload["pipes"])]


def _canonical_of_records(payload: Dict[str, Any],
                          pipe_map: Dict[int, int]) -> List[Dict[str, Any]]:
    of_records = []
    for rec in payload["of_records"].values():
        rec = dict(rec)
        for key in ("pipe", "peer_pipe"):
            if rec.get(key) is not None:
                rec[key] = pipe_map.get(rec[key], -1)
        of_records.append(rec)
    return of_records


def _canonical_processes(payload: Dict[str, Any], pipe_map: Dict[int, int],
                         of_map: Dict[int, int]) -> List[Dict[str, Any]]:
    processes = []
    for prec in payload["processes"]:
        prec = dict(prec)
        prec["fdtable"] = [(fd, of_map[ofid])
                           for fd, ofid in sorted(prec["fdtable"].items())]
        threads = []
        for trec in prec["threads"]:
            trec = dict(trec)
            trec["wait_channels"] = [_canonical_chan(d, pipe_map)
                                     for d in trec["wait_channels"]]
            threads.append(trec)
        prec["threads"] = threads
        processes.append(prec)
    return processes


def _canonical_parked(payload: Dict[str, Any],
                      pipe_map: Dict[int, int]) -> List[Tuple]:
    return [(_canonical_chan(d, pipe_map), list(tids))
            for d, tids in payload["parked"]]


def _canonical_sockets(payload: Dict[str, Any],
                       pipe_map: Dict[int, int]) -> Optional[Dict[str, Any]]:
    """The sockets section with unstable identifiers erased: pending
    pipe ids remapped, the internal dirty epoch dropped (it counts
    mutations, not guest-visible state)."""
    srec = payload.get("sockets")
    if srec is None:  # pre-sockets payload
        return None
    return {
        "port_next": srec["port_next"],
        "bound": [tuple(key) for key in srec["bound"]],
        "listeners": [
            {"family": lrec["family"], "address": lrec["address"],
             "backlog": lrec["backlog"],
             "pending": [(pipe_map.get(ts, -1), pipe_map.get(tc, -1), peer)
                         for ts, tc, peer in lrec["pending"]]}
            for lrec in srec["listeners"]],
    }


def canonical_state(payload: Dict[str, Any],
                    scope: str = GUEST_SCOPE) -> Dict[str, Any]:
    """Reduce a capture payload to a canonical, comparison-safe form.

    Every reference into the unstable namespaces (see
    :func:`_canonical_maps`) — fd tables, fifo inodes, pipe-channel
    descriptors in wait lists and the parked map — is rewritten to the
    dense deterministic index.  The node table is emitted sorted by
    ``(ino, generation)`` key so a payload materialized from a delta
    chain canonicalizes identically to a fresh full capture of the
    same state, whatever dict order composition produced.
    """
    if scope not in (GUEST_SCOPE, FULL_SCOPE):
        raise ValueError("unknown fingerprint scope %r" % scope)
    pipe_map, of_map = _canonical_maps(payload)

    fs_nodes = [(key, _canonical_node(payload["fs_nodes"][key], pipe_map))
                for key in sorted(payload["fs_nodes"])]

    state: Dict[str, Any] = {key: payload[key] for key in _GUEST_KEYS}
    state.update({
        "fs_nodes": fs_nodes,
        "pipes": _canonical_pipes(payload, pipe_map),
        "sockets": _canonical_sockets(payload, pipe_map),
        "of_records": _canonical_of_records(payload, pipe_map),
        "processes": _canonical_processes(payload, pipe_map, of_map),
        "parked": _canonical_parked(payload, pipe_map),
        "scope": scope,
    })
    if scope == FULL_SCOPE:
        state.update({key: payload[key] for key in _FULL_KEYS})
        # The tape is reduced to per-entry digests: pickling the list
        # wholesale memoizes objects shared *across* entries, so a tape
        # composed from delta-chain segments (where the journal
        # round-trip severed cross-entry sharing) would compare unequal
        # to a live capture of the very same entries.
        state["tape"] = tuple(
            hashlib.sha256(pickle.dumps(entry, _FP_PROTOCOL)).hexdigest()
            for entry in payload["tape"])
        state["pipe_counter"] = len(pipe_map)
    return state


def state_fingerprint(payload: Dict[str, Any],
                      scope: str = GUEST_SCOPE) -> str:
    """Merkle-root sha256 of the canonical state of *payload*.

    Deterministic within a pinned pickle protocol: equal captured
    states — regardless of interpreter object identities or how many
    runs preceded them in this process — hash equal, and any
    guest-visible difference hashes different.  The digest is the root
    of the Merkle tree :mod:`repro.ckpt.merkle` maintains incrementally
    across delta chains, so chain cursors and from-scratch computation
    agree byte-for-byte.
    """
    from .merkle import merkle_fingerprint
    return merkle_fingerprint(payload, scope=scope)


@dataclasses.dataclass
class Snapshot:
    """One loaded checkpoint: barrier coordinates plus the live payload.

    The object the diagnosis plane works with: :meth:`fingerprint`
    exposes the canonical state digest that checkpoint bisection
    compares across two runs, and ``repro ckpt verify`` prints.
    """

    barrier: int
    vclock: float
    payload: Dict[str, Any]
    path: str = ""

    @classmethod
    def load(cls, path: str,
             fingerprint: Optional[str] = None) -> "Snapshot":
        """Load (and validate) a journal snapshot file."""
        header, blob = journal.load_snapshot(path, fingerprint=fingerprint)
        return cls(barrier=int(header["barrier"]),
                   vclock=float(header["vclock"]),
                   payload=pickle.loads(blob), path=path)

    def fingerprint(self, scope: str = GUEST_SCOPE) -> str:
        """Deterministic sha256 of this snapshot's canonical state."""
        return state_fingerprint(self.payload, scope=scope)
