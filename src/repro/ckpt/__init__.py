"""Crash-consistent checkpoint/restore with deterministic resume.

A checkpoint is a *complete* serialization of the deterministic state of
a run — kernel (filesystem, inodes, fds, pipes, signals, timers,
procfs), the reproducible scheduler's heaps and token state, guest
process continuations, the tracer's PRNG/logical clocks, and the
observability counters — taken at a virtual-time barrier between kernel
events.  Restoring a checkpoint and continuing the run produces
byte-identical traces, metrics and output to a never-interrupted run:
the strongest robustness property a deterministic container can claim.

Layout:

* :mod:`repro.ckpt.tape` — the resume tape: guest continuations are
  Python generator frames (unserializable by design), so every value or
  exception the kernel ever feeds a guest generator is recorded on an
  append-only tape.  Restore rebuilds the frames by *fast-forwarding*:
  re-driving the (pure) guest code with the taped inputs.
* :mod:`repro.ckpt.snapshot` — capture/restore of everything else,
  which is plain data and snapshots wholesale.
* :mod:`repro.ckpt.journal` — the on-disk write-ahead journal: snapshots
  are written temp-file + fsync + atomic rename under a header carrying
  the format version, the config fingerprint and a content checksum, so
  a torn write is always detectable and never shadows an older valid
  snapshot.
* :mod:`repro.ckpt.merkle` — Merkle fingerprints over payloads:
  per-inode leaves, directory interior nodes, maintained incrementally
  along delta chains so verification and bisection hash O(changed).
* :mod:`repro.ckpt.manager` — the barrier hook the kernel drives
  (``kernel.ckpt``) and the startup recovery scan.

Snapshots come in two kinds since format 2: periodic **full** captures
and **delta** records between them, carrying only the inodes the
kernel's dirty-epoch tracking stamped plus the payload sections whose
hashes moved — making checkpoint cost proportional to state *changed*,
not state *held*.
"""

from .journal import JournalError, SnapshotInfo, prune, scan, write_snapshot
from .manager import CheckpointManager, RecoveryManager
from .merkle import MerkleCursor, merkle_fingerprint
from .snapshot import (
    FULL_SCOPE,
    GUEST_SCOPE,
    CheckpointUnsupported,
    DeltaUnsupported,
    RestoreError,
    Snapshot,
    canonical_state,
    capture,
    capture_delta,
    materialize_delta,
    restore,
    section_hashes,
    state_fingerprint,
)
from .tape import OPAQUE, encode_value, decode_value

__all__ = [
    "CheckpointManager",
    "CheckpointUnsupported",
    "DeltaUnsupported",
    "FULL_SCOPE",
    "GUEST_SCOPE",
    "JournalError",
    "MerkleCursor",
    "OPAQUE",
    "RecoveryManager",
    "RestoreError",
    "Snapshot",
    "SnapshotInfo",
    "canonical_state",
    "capture",
    "capture_delta",
    "decode_value",
    "encode_value",
    "materialize_delta",
    "merkle_fingerprint",
    "prune",
    "restore",
    "scan",
    "section_hashes",
    "state_fingerprint",
    "write_snapshot",
]
