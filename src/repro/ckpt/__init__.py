"""Crash-consistent checkpoint/restore with deterministic resume.

A checkpoint is a *complete* serialization of the deterministic state of
a run — kernel (filesystem, inodes, fds, pipes, signals, timers,
procfs), the reproducible scheduler's heaps and token state, guest
process continuations, the tracer's PRNG/logical clocks, and the
observability counters — taken at a virtual-time barrier between kernel
events.  Restoring a checkpoint and continuing the run produces
byte-identical traces, metrics and output to a never-interrupted run:
the strongest robustness property a deterministic container can claim.

Layout:

* :mod:`repro.ckpt.tape` — the resume tape: guest continuations are
  Python generator frames (unserializable by design), so every value or
  exception the kernel ever feeds a guest generator is recorded on an
  append-only tape.  Restore rebuilds the frames by *fast-forwarding*:
  re-driving the (pure) guest code with the taped inputs.
* :mod:`repro.ckpt.snapshot` — capture/restore of everything else,
  which is plain data and snapshots wholesale.
* :mod:`repro.ckpt.journal` — the on-disk write-ahead journal: snapshots
  are written temp-file + fsync + atomic rename under a header carrying
  the format version, the config fingerprint and a content checksum, so
  a torn write is always detectable and never shadows an older valid
  snapshot.
* :mod:`repro.ckpt.manager` — the barrier hook the kernel drives
  (``kernel.ckpt``) and the startup recovery scan.
"""

from .journal import JournalError, SnapshotInfo, prune, scan, write_snapshot
from .manager import CheckpointManager, RecoveryManager
from .snapshot import (
    FULL_SCOPE,
    GUEST_SCOPE,
    CheckpointUnsupported,
    RestoreError,
    Snapshot,
    canonical_state,
    capture,
    restore,
    state_fingerprint,
)
from .tape import OPAQUE, encode_value, decode_value

__all__ = [
    "CheckpointManager",
    "CheckpointUnsupported",
    "FULL_SCOPE",
    "GUEST_SCOPE",
    "JournalError",
    "OPAQUE",
    "RecoveryManager",
    "RestoreError",
    "Snapshot",
    "SnapshotInfo",
    "canonical_state",
    "capture",
    "decode_value",
    "encode_value",
    "prune",
    "restore",
    "scan",
    "state_fingerprint",
    "write_snapshot",
]
