"""Incremental Merkle fingerprints over checkpoint payloads.

The flat v1 fingerprint pickled the whole canonical state and hashed it:
O(state) per barrier, twice per bisection probe.  This module replaces
it with a Merkle tree:

* one **leaf** per filesystem inode record (hashed without its entries
  map or device-path hint);
* one **interior node** per directory, hashing its leaf together with
  the ``(name, child-subtree)`` sequence in entry order — so a change
  anywhere under a directory moves every hash on the path to the root
  and nothing else;
* unreachable-but-live inodes (unlinked-but-open files, ``rmdir``'d
  working directories) join at the top as a sorted orphan list;
* every non-filesystem payload section contributes one canonical item
  digest (via the ``_canonical_*`` helpers shared with
  :func:`repro.ckpt.snapshot.canonical_state`).

The root digest is *the* fingerprint: :func:`merkle_fingerprint`
computes it from scratch, and :class:`MerkleCursor` maintains it
incrementally along a delta chain — ``advance(delta)`` re-hashes only
the dirty leaves, their ancestor paths, and the changed sections, so a
chain of k deltas over n inodes costs O(k · changed · depth) instead of
O(k · n).  The two computations agree byte-for-byte by construction:
the cursor applies the same :func:`materialize_delta` composition the
recovery path uses and memoizes subtree hashes keyed by
``(ino, generation)``.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Dict, Iterable, List, Set, Tuple

from .snapshot import (
    FULL_SCOPE,
    GUEST_SCOPE,
    _FP_PROTOCOL,
    _FULL_KEYS,
    _GUEST_KEYS,
    _canonical_maps,
    _canonical_node,
    _canonical_of_records,
    _canonical_parked,
    _canonical_pipes,
    _canonical_processes,
    _canonical_sockets,
    materialize_delta,
)

Key = Tuple[int, int]


def _hash(obj: Any) -> str:
    return hashlib.sha256(pickle.dumps(obj, _FP_PROTOCOL)).hexdigest()


#: Canonical items derived from more than just their own section: when a
#: delta replaces the key'd section, these item digests go stale too.
#: (The pipe/of identity maps are handled separately — see ``advance``.)
_SECTION_ITEMS: Dict[str, Tuple[str, ...]] = {
    "pipes": ("pipes",),
    "sockets": ("sockets",),
    "of_records": ("of_records",),
    "processes": ("processes",),
    "parked": ("parked",),
}


class MerkleCursor:
    """A Merkle tree over one payload, advanceable along a delta chain.

    ``MerkleCursor(payload, scope).root`` is the fingerprint of
    *payload*; ``advance(delta)`` moves the cursor to the composed
    payload and returns the new root, re-hashing only what changed.
    """

    def __init__(self, payload: Dict[str, Any],
                 scope: str = GUEST_SCOPE) -> None:
        if scope not in (GUEST_SCOPE, FULL_SCOPE):
            raise ValueError("unknown fingerprint scope %r" % scope)
        self.scope = scope
        self.payload = payload
        self._pipe_map, self._of_map = _canonical_maps(payload)
        #: Subtree digest memo, keyed (ino, generation).
        self._subtree: Dict[Key, str] = {}
        #: Reverse entry links: child key -> set of directory keys.
        self._parents: Dict[Key, Set[Key]] = {}
        #: Keys with no parent link (excluding the root): the live
        #: unreachable inodes that join the fs hash as a sorted list.
        self._orphans: Set[Key] = set()
        #: FIFO leaves reference the pipe remap, so a pipe-id reshuffle
        #: invalidates exactly these.
        self._fifo_keys: Set[Key] = set()
        root_key = tuple(payload["fs_root"])
        for key, rec in payload["fs_nodes"].items():
            if rec.get("fifo") is not None:
                self._fifo_keys.add(key)
            if rec.get("entries"):
                for ckey in rec["entries"].values():
                    self._parents.setdefault(tuple(ckey), set()).add(key)
        for key in payload["fs_nodes"]:
            if key != root_key and not self._parents.get(key):
                self._orphans.add(key)
        #: Per-entry tape hashes (FULL scope only).  The tape must be
        #: hashed entry-by-entry: pickling the whole list memoizes
        #: objects shared *across* entries, so a tape composed from
        #: chain segments (where cross-entry sharing was severed by the
        #: journal round-trip) would pickle differently from a live
        #: capture of the same entries.  Per-entry digests are immune —
        #: and appends extend the list in O(new entries).
        self._tape_hashes: List[str] = (
            [_hash(entry) for entry in payload["tape"]]
            if scope == FULL_SCOPE else [])
        self._items: Dict[str, str] = {}
        for name in self._item_names():
            self._items[name] = self._item_digest(name)
        self.root = self._compose()

    # -- item plumbing ---------------------------------------------------

    def _item_names(self) -> List[str]:
        names = list(_GUEST_KEYS)
        names += ["pipes", "sockets", "of_records", "processes", "parked",
                  "scope", "fs_nodes"]
        if self.scope == FULL_SCOPE:
            names += list(_FULL_KEYS)
            names.append("pipe_counter")
        return names

    def _item_digest(self, name: str) -> str:
        payload = self.payload
        if name == "scope":
            value: Any = self.scope
        elif name == "fs_nodes":
            return self._fs_digest()
        elif name == "pipes":
            value = _canonical_pipes(payload, self._pipe_map)
        elif name == "sockets":
            value = _canonical_sockets(payload, self._pipe_map)
        elif name == "of_records":
            value = _canonical_of_records(payload, self._pipe_map)
        elif name == "processes":
            value = _canonical_processes(payload, self._pipe_map,
                                         self._of_map)
        elif name == "parked":
            value = _canonical_parked(payload, self._pipe_map)
        elif name == "pipe_counter":
            value = len(self._pipe_map)
        elif name == "tape":
            value = tuple(self._tape_hashes)
        else:
            value = payload[name]
        return _hash((name, value))

    # -- filesystem tree -------------------------------------------------

    def _subtree_digest(self, key: Key) -> str:
        memo = self._subtree
        digest = memo.get(key)
        if digest is not None:
            return digest
        rec = self.payload["fs_nodes"][key]
        canon = _canonical_node(rec, self._pipe_map)
        entries = canon.pop("entries", None)
        leaf = _hash(("leaf", key, canon))
        if rec["entries"] is None:
            digest = leaf
        else:
            digest = _hash(("dir", leaf,
                            tuple((name, self._subtree_digest(tuple(ckey)))
                                  for name, ckey in (entries or {}).items())))
        memo[key] = digest
        return digest

    def _fs_digest(self) -> str:
        root_key = tuple(self.payload["fs_root"])
        return _hash(("fs", self._subtree_digest(root_key),
                      tuple((key, self._subtree_digest(key))
                            for key in sorted(self._orphans))))

    def _ancestors(self, keys: Iterable[Key]) -> Set[Key]:
        out: Set[Key] = set()
        stack = list(keys)
        while stack:
            key = stack.pop()
            for parent in self._parents.get(key, ()):
                if parent not in out:
                    out.add(parent)
                    stack.append(parent)
        return out

    def _compose(self) -> str:
        return _hash(("merkle-root", self.scope,
                      tuple(sorted(self._items.items()))))

    # -- advancing -------------------------------------------------------

    def advance(self, delta: Dict[str, Any]) -> str:
        """Compose *delta* onto the cursor's payload; return the new root.

        Re-hashes only the delta's dirty/dead leaves, the directory
        paths above them, and the changed canonical items.
        """
        old_nodes = self.payload["fs_nodes"]
        old_pipe_map, old_of_map = self._pipe_map, self._of_map
        self.payload = materialize_delta(self.payload, delta)
        self._pipe_map, self._of_map = _canonical_maps(self.payload)
        root_key = tuple(self.payload["fs_root"])

        stale: Set[str] = {"fs_nodes"}
        for section in delta["sections"]:
            for name in _SECTION_ITEMS.get(section, (section,)):
                if name in self._items:
                    stale.add(name)
        fifo_stale: Set[Key] = set()
        if self._pipe_map != old_pipe_map:
            stale.update(n for n in ("pipes", "sockets", "of_records",
                                     "processes", "parked", "pipe_counter")
                         if n in self._items)
            fifo_stale = set(self._fifo_keys)
        if self._of_map != old_of_map and "processes" in self._items:
            stale.add("processes")
        if "tape" in self._items and delta["tape_tail"]:
            stale.add("tape")
            self._tape_hashes.extend(
                _hash(entry) for entry in delta["tape_tail"])

        dirty: Dict[Key, Dict[str, Any]] = delta["fs_dirty"]
        dead: List[Key] = list(delta["fs_dead"])

        # Invalidate under the *old* link structure first (a moved or
        # deleted node's former ancestors must re-hash too) ...
        invalid: Set[Key] = set(dirty) | set(dead) | fifo_stale
        invalid |= self._ancestors(invalid)

        # ... then update the reverse links from the entry diffs.
        touched: Set[Key] = set(dirty)

        def unlink(child: Key, parent: Key) -> None:
            links = self._parents.get(child)
            if links is not None:
                links.discard(parent)
            touched.add(child)

        def link(child: Key, parent: Key) -> None:
            self._parents.setdefault(child, set()).add(parent)
            touched.add(child)

        for key in dead:
            old = old_nodes.get(key)
            if old is not None and old.get("entries"):
                for ckey in old["entries"].values():
                    unlink(tuple(ckey), key)
            self._parents.pop(key, None)
            self._orphans.discard(key)
            self._fifo_keys.discard(key)
        for key, rec in dirty.items():
            old = old_nodes.get(key)
            old_children = (set(map(tuple, old["entries"].values()))
                            if old is not None and old.get("entries")
                            else set())
            new_children = (set(map(tuple, rec["entries"].values()))
                            if rec.get("entries") else set())
            for ckey in old_children - new_children:
                unlink(ckey, key)
            for ckey in new_children - old_children:
                link(ckey, key)
            if rec.get("fifo") is not None:
                self._fifo_keys.add(key)
            else:
                self._fifo_keys.discard(key)

        nodes = self.payload["fs_nodes"]
        for key in touched:
            if key in nodes and key != root_key \
                    and not self._parents.get(key):
                self._orphans.add(key)
            else:
                self._orphans.discard(key)

        # New ancestors as well (rename targets, fresh creations).
        invalid |= self._ancestors(set(dirty) | fifo_stale)
        for key in invalid:
            self._subtree.pop(key, None)

        for name in stale:
            self._items[name] = self._item_digest(name)
        self.root = self._compose()
        return self.root


def merkle_fingerprint(payload: Dict[str, Any],
                       scope: str = GUEST_SCOPE) -> str:
    """Merkle-root sha256 of *payload* computed from scratch."""
    return MerkleCursor(payload, scope=scope).root
