"""Barrier-driven checkpoint manager and the startup recovery scan.

The :class:`CheckpointManager` lives on ``kernel.ckpt`` for the whole
run.  It plays two roles:

* **tape recorder** — the kernel calls the ``record_*`` hooks at every
  generator interaction so guest continuations stay reconstructible
  (see :mod:`repro.ckpt.tape`);
* **barrier trigger** — after each event the kernel calls
  :meth:`maybe_barrier`, which snapshots when the configured interval
  elapses or an external request (SIGTERM) is pending.

A snapshot failure (e.g. :class:`CheckpointUnsupported` state such as
an open loopback socket) is recorded on ``last_error`` and never kills
the run — checkpointing is strictly best-effort and must not perturb
the run it protects.

The :class:`RecoveryManager` is the startup half: scan the journal,
skip torn/corrupt files, hand back the newest valid snapshot.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Tuple

from . import journal
from .snapshot import CheckpointUnsupported, Snapshot, capture
from .tape import shallow_copy


class CheckpointManager:
    """Records the resume tape and writes barrier snapshots."""

    def __init__(self, directory: str, every: int = 0, keep: int = 3,
                 fingerprint: str = "") -> None:
        self.directory = directory
        self.every = every
        self.keep = keep
        self.fingerprint = fingerprint
        #: Set asynchronously (e.g. from a SIGTERM handler); the next
        #: barrier check snapshots and clears it.
        self.requested = False
        self.tape: List[Tuple] = []
        self.snapshots_taken = 0
        self.last_barrier = -1
        self.last_error = ""

    # -- external trigger -----------------------------------------------

    def request(self) -> None:
        """Ask for a snapshot at the next barrier (signal-safe: only
        flips a flag)."""
        self.requested = True

    # -- tape hooks (hot path: keep them allocation-light) ---------------

    def record_step(self, tid: int, value: Any,
                    exc: Optional[BaseException]) -> None:
        if exc is not None:
            self.tape.append(("throw", tid, exc))
        else:
            self.tape.append(("send", tid, shallow_copy(value)))

    def record_push(self, tid: int, signum: int, saved_value: Any,
                    saved_exc: Optional[BaseException]) -> None:
        self.tape.append(
            ("push", tid, signum, shallow_copy(saved_value), saved_exc))

    def record_spawn(self, tid: int, path: str, argv, env) -> None:
        self.tape.append(("spawn", tid, path, list(argv), dict(env)))

    def record_exec(self, tid: int, path: str, argv, env) -> None:
        self.tape.append(("exec", tid, path, list(argv), dict(env)))

    def record_tspawn(self, tid: int, caller_tid: int) -> None:
        self.tape.append(("tspawn", tid, caller_tid))

    def record_sigact(self, tid: int, signum: int) -> None:
        self.tape.append(("sigact", tid, signum))

    # -- barrier ----------------------------------------------------------

    def maybe_barrier(self, kernel) -> None:
        tick = kernel.stats.events_processed
        due = self.requested or (self.every > 0 and tick % self.every == 0)
        if not due or tick == self.last_barrier:
            return
        self.requested = False
        try:
            self.snapshot(kernel)
        except CheckpointUnsupported as err:
            self.last_error = str(err)
        except (pickle.PicklingError, TypeError, OSError) as err:
            self.last_error = "%s: %s" % (type(err).__name__, err)

    def snapshot(self, kernel) -> str:
        """Capture and atomically persist a snapshot right now."""
        tick = kernel.stats.events_processed
        payload = capture(kernel)
        blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        path = journal.write_snapshot(
            self.directory, tick, kernel.clock.now, self.fingerprint, blob)
        self.snapshots_taken += 1
        self.last_barrier = tick
        self.last_error = ""
        if self.keep > 0:
            journal.prune(self.directory, self.keep)
        return path


class RecoveryManager:
    """Startup-side journal scan and snapshot selection."""

    def __init__(self, directory: str,
                 fingerprint: Optional[str] = None) -> None:
        self.directory = directory
        self.fingerprint = fingerprint

    def scan(self) -> List[journal.SnapshotInfo]:
        """All journal entries, newest first, torn files marked invalid."""
        return journal.scan(self.directory, fingerprint=self.fingerprint)

    def latest(self) -> Optional[journal.SnapshotInfo]:
        """The newest valid snapshot to resume from, or None."""
        return journal.latest_valid(self.directory,
                                    fingerprint=self.fingerprint)

    def load(self, info: Optional[journal.SnapshotInfo] = None,
             ) -> Tuple[journal.SnapshotInfo, Dict[str, Any]]:
        """Load (and re-validate) a snapshot payload for restore."""
        if info is None:
            info = self.latest()
        if info is None:
            raise journal.JournalError(
                "no valid snapshot in %s" % self.directory)
        _header, blob = journal.load_snapshot(
            info.path, fingerprint=self.fingerprint)
        return info, pickle.loads(blob)

    def snapshots(self) -> List[Snapshot]:
        """Every valid snapshot as a live :class:`Snapshot`, oldest
        barrier first — the walk checkpoint bisection and ``repro ckpt
        verify`` fingerprint."""
        out: List[Snapshot] = []
        for info in reversed(self.scan()):
            if info.valid:
                out.append(Snapshot.load(info.path,
                                         fingerprint=self.fingerprint))
        return out
