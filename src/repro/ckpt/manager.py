"""Barrier-driven checkpoint manager and the startup recovery scan.

The :class:`CheckpointManager` lives on ``kernel.ckpt`` for the whole
run.  It plays two roles:

* **tape recorder** — the kernel calls the ``record_*`` hooks at every
  generator interaction so guest continuations stay reconstructible
  (see :mod:`repro.ckpt.tape`);
* **barrier trigger** — after each event the kernel calls
  :meth:`maybe_barrier`, which snapshots when the configured interval
  elapses or an external request (SIGTERM) is pending.

A snapshot failure (e.g. :class:`CheckpointUnsupported` state such as
an open loopback socket) is recorded on ``last_error`` and never kills
the run — checkpointing is strictly best-effort and must not perturb
the run it protects.

The :class:`RecoveryManager` is the startup half: scan the journal,
skip torn/corrupt files, hand back the newest valid snapshot.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Dict, List, Optional, Tuple

from . import journal
from .merkle import MerkleCursor
from .snapshot import (
    GUEST_SCOPE,
    CheckpointUnsupported,
    DeltaUnsupported,
    Snapshot,
    capture,
    capture_delta,
    materialize_delta,
    section_hashes,
)
from .tape import encode_tape, shallow_copy


class CheckpointManager:
    """Records the resume tape and writes barrier snapshots.

    With ``full_every > 1`` the manager writes **delta snapshots**
    between periodic full ones: the kernel's dirty-epoch tracking
    enumerates exactly the inodes mutated since the previous barrier,
    per-section hashes of the runtime state pick out the changed
    sections, and the journal entry references its base by payload
    sha256.  ``full_every=1`` restores the all-full legacy behaviour.
    Any capture or write failure resets the incremental caches so the
    next snapshot is a self-contained full one.
    """

    def __init__(self, directory: str, every: int = 0, keep: int = 3,
                 fingerprint: str = "", full_every: int = 4) -> None:
        self.directory = directory
        self.every = every
        self.keep = keep
        self.fingerprint = fingerprint
        self.full_every = max(1, int(full_every))
        #: Set asynchronously (e.g. from a SIGTERM handler); the next
        #: barrier check snapshots and clears it.
        self.requested = False
        self.tape: List[Tuple] = []
        self.snapshots_taken = 0
        self.last_barrier = -1
        self.last_error = ""
        #: Manager-local gauges (never routed through ``kernel.obs``:
        #: checkpointing must not perturb the run it protects).
        self.snapshots_full = 0
        self.snapshots_delta = 0
        self.snapshot_bytes = 0
        self.last_dirty_objects = 0
        #: Incrementally-maintained ``encode_tape`` of ``self.tape``:
        #: each entry is encoded once, at the first snapshot after it
        #: was recorded, so full snapshots never re-encode the whole
        #: history.  Deliberately *not* cleared by
        #: ``_reset_incremental`` — the tape itself only ever appends.
        self._tape_encoded: List[Tuple] = []
        self._reset_incremental()

    def _reset_incremental(self) -> None:
        """Forget the delta base: the next snapshot will be full."""
        self._section_hashes: Optional[Dict[str, str]] = None
        self._last_payload_sha = ""
        self._last_chain_depth = 0
        self._since_full = 0
        self._last_tape_len = 0
        #: Device-path hints by (ino, generation): deltas of device
        #: nodes need the graft path a full capture records.
        self._device_paths: Dict[Tuple[int, int], str] = {}

    # -- external trigger -----------------------------------------------

    def request(self) -> None:
        """Ask for a snapshot at the next barrier (signal-safe: only
        flips a flag)."""
        self.requested = True

    # -- tape hooks (hot path: keep them allocation-light) ---------------

    def record_step(self, tid: int, value: Any,
                    exc: Optional[BaseException]) -> None:
        if exc is not None:
            self.tape.append(("throw", tid, exc))
        else:
            self.tape.append(("send", tid, shallow_copy(value)))

    def record_push(self, tid: int, signum: int, saved_value: Any,
                    saved_exc: Optional[BaseException]) -> None:
        self.tape.append(
            ("push", tid, signum, shallow_copy(saved_value), saved_exc))

    def record_spawn(self, tid: int, path: str, argv, env) -> None:
        self.tape.append(("spawn", tid, path, list(argv), dict(env)))

    def record_exec(self, tid: int, path: str, argv, env) -> None:
        self.tape.append(("exec", tid, path, list(argv), dict(env)))

    def record_tspawn(self, tid: int, caller_tid: int) -> None:
        self.tape.append(("tspawn", tid, caller_tid))

    def record_sigact(self, tid: int, signum: int) -> None:
        self.tape.append(("sigact", tid, signum))

    # -- barrier ----------------------------------------------------------

    def maybe_barrier(self, kernel) -> None:
        tick = kernel.stats.events_processed
        requested = self.requested
        due = requested or (self.every > 0 and tick % self.every == 0)
        if not due or tick == self.last_barrier:
            return
        self.requested = False
        try:
            # Periodic deltas are group-committed (no fsync) — the next
            # full snapshot is the durability barrier.  Requested
            # snapshots (SIGTERM) must survive the imminent kill, so
            # they are always written durably.
            self.snapshot(kernel, durable=requested)
        except CheckpointUnsupported as err:
            self.last_error = str(err)
            self._reset_incremental()
        except (pickle.PicklingError, TypeError, OSError) as err:
            self.last_error = "%s: %s" % (type(err).__name__, err)
            self._reset_incremental()

    def snapshot(self, kernel, durable: bool = True) -> str:
        """Capture and atomically persist a snapshot right now.

        Writes a delta against the previous snapshot when a base exists
        and the full interval has not elapsed; otherwise a full one.
        Full snapshots are always fsynced; *durable* controls whether a
        delta is too (periodic deltas group-commit, see
        :func:`repro.ckpt.journal.write_snapshot`).
        """
        if self._delta_due():
            try:
                return self._snapshot_delta(kernel, durable=durable)
            except DeltaUnsupported:
                pass  # fall through to a self-contained full snapshot
        return self._snapshot_full(kernel)

    def _delta_due(self) -> bool:
        return (self.full_every > 1
                and self._section_hashes is not None
                and bool(self._last_payload_sha)
                and self._since_full < self.full_every - 1)

    def _encode_tape_tail(self) -> List[Tuple]:
        new = self.tape[len(self._tape_encoded):]
        if new:
            self._tape_encoded.extend(encode_tape(new))
        return self._tape_encoded

    def _snapshot_full(self, kernel) -> str:
        tick = kernel.stats.events_processed
        payload = capture(kernel, tape_encoded=self._encode_tape_tail())
        blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        path = journal.write_snapshot(
            self.directory, tick, kernel.clock.now, self.fingerprint, blob)
        self._section_hashes = section_hashes(payload)
        self._last_payload_sha = hashlib.sha256(blob).hexdigest()
        self._last_chain_depth = 0
        self._since_full = 0
        self._last_tape_len = len(self.tape)
        self._device_paths = {
            key: rec["path"] for key, rec in payload["fs_nodes"].items()
            if rec["device"]}
        self.snapshots_full += 1
        self._finish(kernel, tick, len(blob))
        return path

    def _snapshot_delta(self, kernel, durable: bool = True) -> str:
        tick = kernel.stats.events_processed
        delta, new_hashes, dirty_objects = capture_delta(
            kernel, self._section_hashes, self._last_tape_len,
            self._device_paths, tape_encoded=self._encode_tape_tail())
        blob = pickle.dumps(delta, pickle.HIGHEST_PROTOCOL)
        path = journal.write_snapshot(
            self.directory, tick, kernel.clock.now, self.fingerprint, blob,
            snapshot_kind="delta", base_sha256=self._last_payload_sha,
            chain_depth=self._last_chain_depth + 1, durable=durable)
        self._section_hashes = new_hashes
        self._last_payload_sha = hashlib.sha256(blob).hexdigest()
        self._last_chain_depth += 1
        self._since_full += 1
        self._last_tape_len = len(self.tape)
        for key, rec in delta["fs_dirty"].items():
            if rec["device"]:
                self._device_paths[key] = rec["path"]
        for key in delta["fs_dead"]:
            self._device_paths.pop(key, None)
        self.snapshots_delta += 1
        self.last_dirty_objects = dirty_objects
        self._finish(kernel, tick, len(blob))
        return path

    def _finish(self, kernel, tick: int, blob_len: int) -> None:
        # Only after the journal write landed: a failed capture must
        # leave the dirty set intact for the next (full) snapshot.
        kernel.fs.clear_dirty()
        self.snapshot_bytes += blob_len
        self.snapshots_taken += 1
        self.last_barrier = tick
        self.last_error = ""
        if self.keep > 0:
            journal.prune(self.directory, self.keep)


class RecoveryManager:
    """Startup-side journal scan, chain composition and selection."""

    def __init__(self, directory: str,
                 fingerprint: Optional[str] = None) -> None:
        self.directory = directory
        self.fingerprint = fingerprint

    def scan(self) -> List[journal.SnapshotInfo]:
        """All journal entries, newest first, torn files marked invalid."""
        return journal.scan(self.directory, fingerprint=self.fingerprint)

    def latest(self) -> Optional[journal.SnapshotInfo]:
        """The newest materializable snapshot to resume from, or None."""
        return journal.latest_valid(self.directory,
                                    fingerprint=self.fingerprint)

    def _read_payload(self, info: journal.SnapshotInfo) -> Dict[str, Any]:
        _header, blob = journal.load_snapshot(
            info.path, fingerprint=self.fingerprint)
        return pickle.loads(blob)

    def _chain_of(self, info: journal.SnapshotInfo,
                  infos: Optional[List[journal.SnapshotInfo]] = None,
                  ) -> List[journal.SnapshotInfo]:
        """*info*'s chain, full base first, ending at *info* itself."""
        if infos is None:
            infos = self.scan()
        by_sha = {i.payload_sha256: i for i in infos
                  if i.valid and i.payload_sha256}
        chain = [info]
        node = info
        while node.snapshot_kind == "delta":
            base = by_sha.get(node.base_sha256)
            if base is None:
                raise journal.JournalError(
                    "%s: delta snapshot's base (payload sha256 %s...) is "
                    "missing or invalid — the chain cannot be materialized"
                    % (node.path, node.base_sha256[:12]))
            chain.append(base)
            node = base
        chain.reverse()
        return chain

    def materialize(self, info: journal.SnapshotInfo,
                    infos: Optional[List[journal.SnapshotInfo]] = None,
                    ) -> Dict[str, Any]:
        """The full payload at *info*'s barrier: its base plus every
        delta in the chain, composed in order."""
        chain = self._chain_of(info, infos)
        payload = self._read_payload(chain[0])
        for link in chain[1:]:
            payload = materialize_delta(payload, self._read_payload(link))
        return payload

    def load(self, info: Optional[journal.SnapshotInfo] = None,
             ) -> Tuple[journal.SnapshotInfo, Dict[str, Any]]:
        """Load (and re-validate) a snapshot payload for restore.

        A delta snapshot is materialized against its chain; a missing
        or torn base raises :class:`JournalError` naming the base.
        """
        if info is None:
            info = self.latest()
        if info is None:
            raise journal.JournalError(
                "no valid snapshot in %s" % self.directory)
        return info, self.materialize(info)

    def snapshots(self) -> List[Snapshot]:
        """Every materializable snapshot as a live :class:`Snapshot`,
        oldest barrier first — the walk checkpoint bisection and
        ``repro ckpt verify`` fingerprint.  Delta chains are composed
        incrementally: each barrier's payload builds on the previous
        materialization instead of re-reading the whole chain."""
        infos = self.scan()
        by_sha: Dict[str, Dict[str, Any]] = {}
        out: List[Snapshot] = []
        for info in reversed(infos):  # oldest barrier first
            if not info.chain_valid:
                continue
            if info.snapshot_kind != "delta":
                payload = self._read_payload(info)
            else:
                base = by_sha.get(info.base_sha256)
                if base is None:
                    payload = self.materialize(info, infos)
                else:
                    payload = materialize_delta(
                        base, self._read_payload(info))
            by_sha[info.payload_sha256] = payload
            out.append(Snapshot(barrier=info.barrier, vclock=info.vclock,
                                payload=payload, path=info.path))
        return out

    def chain_fingerprints(self, scope: str = GUEST_SCOPE,
                           ) -> Dict[int, Tuple[str, float]]:
        """``{barrier: (fingerprint, vclock)}`` for every materializable
        snapshot, computed with an incremental Merkle cursor: one full
        tree build per chain, then O(changed) per delta — the fast path
        checkpoint bisection probes through."""
        infos = self.scan()
        cursors: Dict[str, MerkleCursor] = {}
        out: Dict[int, Tuple[str, float]] = {}
        for info in reversed(infos):  # oldest barrier first
            if not info.chain_valid:
                continue
            if info.snapshot_kind != "delta":
                cursor = MerkleCursor(self._read_payload(info), scope=scope)
            else:
                cursor = cursors.pop(info.base_sha256, None)
                if cursor is None:
                    cursor = MerkleCursor(self.materialize(info, infos),
                                          scope=scope)
                else:
                    cursor.advance(self._read_payload(info))
            cursors[info.payload_sha256] = cursor
            out[info.barrier] = (cursor.root, info.vclock)
        return out
