"""Hot-path throughput measurements (``repro bench hotpath``).

Three numbers track whether the engine stays "as fast as the hardware
allows" (ROADMAP north star) without ever bending the determinism
contract:

* **scheduler decisions/sec** — a steady-state service loop over N
  threads, run against both the O(log n) ``logical`` scheduler and its
  quadratic ``logical-ref`` oracle; the decision *sequences* are
  asserted identical while the throughputs are compared;
* **serviced syscalls/sec** — end-to-end Debian package builds under
  DetTrace, host wall time divided into the tracer's serviced syscall
  events, plus the filesystem dentry/dirent cache hit rates;
* **fan-out speedup** — the same build sample executed serially and via
  :mod:`repro.parallel` workers, with byte-identical per-run digests
  required before the speedup is reported.

The library is import-light so both the CLI subcommand and the pytest
wrapper (``benchmarks/bench_hotpath.py``) can drive it; all knobs scale
down for CI via the ``scale`` argument.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

from .core import ContainerConfig
from .core.scheduler import SERVICE, WAIT, make_scheduler
from .kernel.costs import SYSCALL_TICK
from .kernel.ops import Syscall
from .kernel.process import Process, Thread, ThreadState
from .parallel import Job, effective_host_cores, run_jobs


# ---------------------------------------------------------------------------
# scheduler decision throughput
# ---------------------------------------------------------------------------

def _make_stopped_threads(n: int) -> List[Thread]:
    threads = []
    for tid in range(1, n + 1):
        proc = Process(pid=tid, nspid=tid, parent=None, root=None, cwd=None,
                       cwd_path="/", env={}, argv=["bench%d" % tid])
        t = Thread(tid=tid, process=proc, gen=None)
        proc.threads.append(t)
        t.det_clock = t.det_bound = float(tid)
        t.state = ThreadState.TRACE_STOP
        t.current_syscall = Syscall("write", {})
        threads.append(t)
    return threads


def _drive_scheduler(kind: str, threads_n: int, decisions: int) -> Tuple[float, List[int]]:
    """Steady-state service loop mirroring the tracer's pump: a serviced
    thread resumes *running* (computing toward its next stop), and when
    nothing is serviceable the lowest-bound runner reaches its stop —
    so every decision sees a mix of stopped and running threads, exactly
    the regime the scheduler operates in.  Returns (seconds,
    serviced-tid sequence) so callers can assert schedule identity."""
    import heapq

    sched = make_scheduler(kind)
    threads = _make_stopped_threads(threads_n)
    for t in threads:
        sched.add(t)
    order: List[int] = []
    #: Harness-side wake queue of running threads, (det_bound, tid,
    #: thread) — O(log n) so the harness never dominates the loop.
    runners: List[Tuple[float, int, Thread]] = []
    serviced = 0
    t0 = time.perf_counter()
    while serviced < decisions:
        action, thread = sched.next_action()
        if action == SERVICE:
            thread.current_syscall = None
            thread.state = ThreadState.RUNNING
            thread.det_clock = thread.det_bound = (
                thread.det_clock + threads_n * SYSCALL_TICK)
            sched.completed(thread)
            heapq.heappush(runners, (thread.det_bound, thread.tid, thread))
            order.append(thread.tid)
            serviced += 1
        elif action == WAIT:
            # The kernel resumes compute: the lowest-bound runner hits
            # its next trace stop (deterministically, by (bound, tid)).
            _, _, nxt = heapq.heappop(runners)
            nxt.det_clock = nxt.det_bound
            nxt.state = ThreadState.TRACE_STOP
            nxt.current_syscall = Syscall("write", {})
            sched.notify_stop(nxt)
        else:
            raise AssertionError("bench loop got unexpected %r" % action)
    elapsed = time.perf_counter() - t0
    return elapsed, order


def bench_scheduler(threads_n: int = 16, decisions: int = 20_000,
                    repeats: int = 5) -> Dict[str, object]:
    """Decisions/sec for logical vs logical-ref at *threads_n* threads.

    Noise shields for shared CI cores: an untimed warm-up pass per
    implementation, GC paused across the timed loops, and best-of-
    *repeats* reported.  The decision sequences of the two
    implementations are asserted identical."""
    import gc

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        _drive_scheduler("logical", threads_n, max(500, decisions // 10))
        _drive_scheduler("logical-ref", threads_n, max(500, decisions // 10))
        fast_s, fast_order = min(
            (_drive_scheduler("logical", threads_n, decisions)
             for _ in range(repeats)), key=lambda r: r[0])
        ref_s, ref_order = min(
            (_drive_scheduler("logical-ref", threads_n, decisions)
             for _ in range(repeats)), key=lambda r: r[0])
    finally:
        if gc_was_enabled:
            gc.enable()
    if fast_order != ref_order:
        raise AssertionError(
            "schedule divergence between logical and logical-ref in the "
            "bench loop (first delta at %d)"
            % next(i for i, (a, b) in enumerate(zip(fast_order, ref_order))
                   if a != b))
    return {
        "threads": threads_n,
        "decisions": decisions,
        "logical_decisions_per_s": round(decisions / fast_s, 1),
        "logical_ref_decisions_per_s": round(decisions / ref_s, 1),
        "speedup": round(ref_s / fast_s, 2),
        "orders_identical": True,
    }


# ---------------------------------------------------------------------------
# end-to-end serviced-syscall throughput + cache hit rates
# ---------------------------------------------------------------------------

def _build_sample(sample: int, seed: int = 33):
    from .workloads.debian import generate_population

    return [s for s in generate_population(sample * 2, seed=seed)
            if not s.expect_dt_unsupported and not s.syscall_storm][:sample]


def bench_serviced_syscalls(sample: int = 8, repeats: int = 3) -> Dict[str, object]:
    """Serviced syscalls per host-second over a package-build sample.

    The sample is built *repeats* times and the fastest pass is the one
    timed — the counters are deterministic (identical every pass), only
    the host wall time is noisy, so best-of-N is the honest estimator
    for the regression gate in scripts/check.sh."""
    from .repro_tools import first_build_host
    from .workloads.debian import build_dettrace

    specs = _build_sample(sample)
    wall = None
    for _ in range(max(1, repeats)):
        serviced = 0
        syscalls = 0
        resolve_hits = resolve_misses = 0
        dirent_hits = dirent_misses = 0
        t0 = time.perf_counter()
        built = 0
        for spec in specs:
            record = build_dettrace(spec, config=ContainerConfig(),
                                    host=first_build_host())
            if record.status != "built":
                continue
            built += 1
            serviced += record.result.counters.syscall_events
            syscalls += record.result.syscall_count
            stats = record.result.fs_cache_stats
            resolve_hits += stats.get("resolve_hits", 0)
            resolve_misses += stats.get("resolve_misses", 0)
            dirent_hits += stats.get("dirent_hits", 0)
            dirent_misses += stats.get("dirent_misses", 0)
        pass_wall = time.perf_counter() - t0
        wall = pass_wall if wall is None else min(wall, pass_wall)
    lookups = resolve_hits + resolve_misses
    listings = dirent_hits + dirent_misses
    return {
        "packages": built,
        "wall_s": round(wall, 6),
        "serviced_syscalls": serviced,
        "total_syscalls": syscalls,
        "serviced_syscalls_per_s": round(serviced / wall, 1) if wall else 0.0,
        "resolve_hit_rate": round(resolve_hits / lookups, 4) if lookups else None,
        "dirent_hit_rate": round(dirent_hits / listings, 4) if listings else None,
    }


# ---------------------------------------------------------------------------
# container fan-out speedup
# ---------------------------------------------------------------------------

def _fanout_build(spec_name_seed) -> Dict[str, object]:
    """Worker: build one spec, return only the digest-reduced record
    (keeps the cross-process payload small and definitely picklable)."""
    from .repro_tools import first_build_host
    from .repro_tools.hashing import tree_digest
    from .workloads.debian import build_dettrace

    spec = spec_name_seed
    record = build_dettrace(spec, config=ContainerConfig(),
                            host=first_build_host())
    return {
        "package": spec.name,
        "status": record.status,
        "digest": tree_digest(record.result.output_tree),
        "virtual_wall": record.result.wall_time,
    }


def bench_fanout(sample: int = 8, jobs: int = 4) -> Dict[str, object]:
    """Wall-clock speedup of a *jobs*-worker sweep vs the serial sweep,
    with per-run digest identity required.

    The speedup is physically bounded by ``host_cores`` (the builds are
    CPU-bound simulations): on a single-core host :func:`run_jobs`
    falls back to the serial loop (pool overhead only ever loses there),
    the record reports ``"fallback": "serial"``, and only the identity
    property is meaningful — consumers must gate throughput assertions
    on the reported core count.
    """
    cores = effective_host_cores()
    specs = _build_sample(sample, seed=47)
    job_list = [Job(key=i, fn=_fanout_build, args=(spec,))
                for i, spec in enumerate(specs)]
    t0 = time.perf_counter()
    serial = run_jobs(job_list, workers=1)
    serial_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    parallel = run_jobs(job_list, workers=jobs)
    parallel_s = time.perf_counter() - t1
    identical = serial == parallel
    if not identical:
        raise AssertionError(
            "serial and %d-worker fan-out produced different results: %r"
            % (jobs, [(a, b) for a, b in zip(serial, parallel) if a != b]))
    return {
        "runs": len(specs),
        "jobs": jobs,
        "host_cores": cores,
        "fallback": ("serial" if jobs > 1 and cores == 1 else None),
        "serial_wall_s": round(serial_s, 6),
        "parallel_wall_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "digests_identical": identical,
    }


# ---------------------------------------------------------------------------
# the combined report
# ---------------------------------------------------------------------------

def run_hotpath_bench(scale: float = 1.0,
                      out_path: Optional[str] = None) -> Dict[str, object]:
    """Run all three hot-path benches; optionally write BENCH_hotpath.json."""
    decisions = max(2_000, int(20_000 * scale))
    sample = max(2, int(8 * scale))
    report = {
        "scheduler": bench_scheduler(threads_n=16, decisions=decisions),
        "serviced": bench_serviced_syscalls(sample=sample),
        "fanout": bench_fanout(sample=sample, jobs=4),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    sched = report["scheduler"]
    served = report["serviced"]
    fan = report["fanout"]
    lines = [
        "hot-path bench:",
        "  scheduler @%d threads: %.0f decisions/s vs ref %.0f (%.1fx), orders identical"
        % (sched["threads"], sched["logical_decisions_per_s"],
           sched["logical_ref_decisions_per_s"], sched["speedup"]),
        "  serviced syscalls: %.0f/s over %d packages (resolve hit rate %s, dirent %s)"
        % (served["serviced_syscalls_per_s"], served["packages"],
           served["resolve_hit_rate"], served["dirent_hit_rate"]),
        "  fan-out: %d runs, %d jobs on %d cores: %.2fs serial vs %.2fs parallel (%.2fx), digests identical"
        % (fan["runs"], fan["jobs"], fan["host_cores"], fan["serial_wall_s"],
           fan["parallel_wall_s"], fan["speedup"] or 0.0),
    ]
    return "\n".join(lines)
