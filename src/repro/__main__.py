"""`python -m repro` — the DetTrace CLI (see repro.cli)."""

from .cli import main

raise SystemExit(main())
