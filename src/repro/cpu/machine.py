"""Machine specifications and host environments.

A :class:`MachineSpec` captures everything about a physical machine that a
guest program could observe and that therefore threatens *portability*
(paper §3, §7.3): microarchitecture, core count, ISA feature flags, cache
sizes, kernel version, and filesystem implementation quirks such as how
directory sizes are reported.

A :class:`HostEnvironment` is one *boot* of one machine: it adds the
per-run facts that threaten *determinism* even on a single machine — the
wall-clock boot epoch, the entropy pool seed, the scheduler's timing
jitter, the inode allocator offset, the directory-hash salt, ASLR, and the
starting PID.  Running the same program twice in two different
``HostEnvironment``\\ s is the simulated equivalent of the paper's
reprotest methodology (§6.1).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

#: Feature strings reported through ``cpuid``.
FEATURE_TSX = "rtm"
FEATURE_RDRAND = "rdrand"
FEATURE_RDSEED = "rdseed"
FEATURE_AVX = "avx"
FEATURE_AVX2 = "avx2"


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A physical machine model.

    Attributes mirror the hardware facts the paper identifies as
    observable by guest code (Figure 1 "nonportability" arrows).
    """

    name: str
    microarch: str
    cpu_vendor: str = "GenuineIntel"
    cpu_brand: str = "Intel(R) Xeon(R) CPU"
    cpu_family: int = 6
    cpu_model: int = 85
    freq_ghz: float = 2.2
    cores: int = 16
    l1d_cache_kb: int = 32
    l2_cache_kb: int = 1024
    l3_cache_kb: int = 14080
    features: Tuple[str, ...] = (FEATURE_AVX, FEATURE_AVX2)
    #: Whether ring-0 cpuid faulting is available (Ivy Bridge and newer;
    #: required for DetTrace's full portability guarantee, §5.8).
    cpuid_faulting: bool = True
    kernel_version: Tuple[int, int] = (4, 15)
    os_name: str = "Ubuntu 18.04"
    hostname: str = "host"
    total_ram_gb: int = 192
    fs_block_size: int = 4096
    #: Filesystems report directory sizes differently across machines
    #: (discovered by the paper's portability experiment, §7.3).  The
    #: reported size is ``dir_size_base + dir_size_per_entry * ceil(n/k)``
    #: style; we model it as a per-machine linear function with rounding.
    dir_size_base: int = 4096
    dir_size_round: int = 4096
    dir_entry_bytes: int = 24

    @property
    def has_tsx(self) -> bool:
        return FEATURE_TSX in self.features

    @property
    def has_rdrand(self) -> bool:
        return FEATURE_RDRAND in self.features

    @property
    def kernel_at_least(self) -> "MachineSpec":
        return self

    def kernel_version_at_least(self, major: int, minor: int) -> bool:
        return self.kernel_version >= (major, minor)

    def directory_size(self, n_entries: int) -> int:
        """Size ``stat`` reports for a directory with *n_entries* entries."""
        raw = self.dir_size_base + self.dir_entry_bytes * n_entries
        round_to = max(1, self.dir_size_round)
        return ((raw + round_to - 1) // round_to) * round_to


# ---------------------------------------------------------------------------
# The machines used in the paper's evaluation (§6, §7.3).
# ---------------------------------------------------------------------------

#: CloudLab c220g5: two Xeon Silver 4114 (Skylake), Ubuntu 18.04 / 4.15.
SKYLAKE_CLOUDLAB = MachineSpec(
    name="cloudlab-c220g5",
    microarch="skylake",
    cpu_brand="Intel(R) Xeon(R) Silver 4114 CPU @ 2.20GHz",
    cpu_model=85,
    freq_ghz=2.2,
    cores=20,
    features=(FEATURE_AVX, FEATURE_AVX2, FEATURE_TSX, FEATURE_RDRAND, FEATURE_RDSEED),
    cpuid_faulting=True,
    kernel_version=(4, 15),
    os_name="Ubuntu 18.04",
    hostname="c220g5",
    total_ram_gb=192,
    dir_size_base=4096,
    dir_size_round=4096,
    dir_entry_bytes=24,
)

#: Xeon E5-2620 v4 (Broadwell), Ubuntu 18.10 / 4.18 — the second
#: portability machine from §7.3, with a different directory-size model.
BROADWELL_XEON = MachineSpec(
    name="broadwell-e5-2620v4",
    microarch="broadwell",
    cpu_brand="Intel(R) Xeon(R) CPU E5-2620 v4 @ 2.10GHz",
    cpu_model=79,
    freq_ghz=2.1,
    cores=16,
    features=(FEATURE_AVX, FEATURE_AVX2, FEATURE_TSX, FEATURE_RDRAND, FEATURE_RDSEED),
    cpuid_faulting=True,
    kernel_version=(4, 18),
    os_name="Ubuntu 18.10",
    hostname="broadwell",
    total_ram_gb=128,
    dir_size_base=0,
    dir_size_round=1024,
    dir_entry_bytes=32,
)

#: Xeon E5-2618Lv3 (Haswell), Ubuntu 18.10 / 4.18 — the bioinformatics/ML
#: machine from §6.
HASWELL_XEON = MachineSpec(
    name="haswell-e5-2618lv3",
    microarch="haswell",
    cpu_brand="Intel(R) Xeon(R) CPU E5-2618L v3 @ 2.30GHz",
    cpu_model=63,
    freq_ghz=2.3,
    cores=16,
    features=(FEATURE_AVX, FEATURE_AVX2, FEATURE_TSX, FEATURE_RDRAND),
    cpuid_faulting=True,
    kernel_version=(4, 18),
    os_name="Ubuntu 18.10",
    hostname="haswell",
    total_ram_gb=128,
)

#: Sandy Bridge: no cpuid faulting, no TSX/RDRAND — DetTrace still runs
#: deterministically here but with a weaker portability class (§5.8).
SANDY_BRIDGE = MachineSpec(
    name="sandybridge-e5-2650",
    microarch="sandybridge",
    cpu_brand="Intel(R) Xeon(R) CPU E5-2650 0 @ 2.00GHz",
    cpu_model=45,
    freq_ghz=2.0,
    cores=16,
    features=(FEATURE_AVX,),
    cpuid_faulting=False,
    kernel_version=(4, 4),
    os_name="Ubuntu 16.04",
    hostname="sandy",
    total_ram_gb=64,
)

#: An old kernel (< 4.8) machine: forces the slower two-stop ptrace path
#: described in §5.11.
OLD_KERNEL_SKYLAKE = dataclasses.replace(
    SKYLAKE_CLOUDLAB, name="skylake-old-kernel", kernel_version=(4, 4), os_name="Ubuntu 16.04"
)

ALL_MACHINES = {
    spec.name: spec
    for spec in (SKYLAKE_CLOUDLAB, BROADWELL_XEON, HASWELL_XEON, SANDY_BRIDGE, OLD_KERNEL_SKYLAKE)
}


@dataclasses.dataclass
class HostEnvironment:
    """One boot of one machine: the per-run nondeterministic facts.

    All simulated "true" nondeterminism flows from :attr:`entropy_seed`
    through the :meth:`rng` streams, so a run is replayable for debugging
    by fixing the seed, yet two runs with different seeds model two real
    executions.
    """

    machine: MachineSpec = SKYLAKE_CLOUDLAB
    #: Wall-clock epoch (seconds) at boot.  Varies per boot.
    boot_epoch: float = 1_546_300_800.0
    #: Seed for the host entropy pool and scheduler jitter.
    entropy_seed: int = 0
    #: First PID the kernel hands out (host PID namespace).
    pid_start: int = 1000
    #: First inode number the filesystem allocator hands out.
    inode_start: int = 100_000
    #: Salt for the on-disk directory hash ordering (getdents order).
    dirent_hash_salt: int = 0
    #: Bits of ASLR entropy for process address-space bases.
    aslr_entropy_bits: int = 28
    #: Whether ASLR is enabled at all (reprotest toggles it).
    aslr_enabled: bool = True
    #: Environment variables a login shell would inherit.
    env: Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "PATH": "/usr/local/bin:/usr/bin:/bin",
            "HOME": "/root",
            "USER": "root",
            "SHELL": "/bin/sh",
            "LANG": "en_US.UTF-8",
            "TZ": "America/New_York",
        }
    )
    #: Timezone offset (seconds east of UTC) applied by guest localtime().
    tz_offset: int = -5 * 3600
    #: Host directory used as the build working directory (reprotest
    #: varies the build path; DetTrace pins CWD to /build inside the
    #: container).
    build_path: str = "/home/user/build"
    #: Optional cap on cores visible to the scheduler (reprotest's
    #: num_cpus variation).
    visible_cores: Optional[int] = None
    #: Disk-full injection: simulated free bytes (None = unlimited).
    disk_free_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self._entropy = random.Random("entropy:%d" % self.entropy_seed)
        self._sched = random.Random("sched:%d" % self.entropy_seed)
        #: Bumped by every mutating draw.  The only run-time mutable
        #: state here is the two RNG streams, and every draw goes
        #: through the methods below — so this counter is an exact,
        #: O(1) change detector for the whole object (delta snapshots
        #: use it in place of pickling the RNG states every barrier).
        #: It advances deterministically with the guest schedule, so it
        #: is fingerprint-stable across checkpoint cadences.
        self._state_version = 0

    # -- entropy streams ----------------------------------------------------

    def entropy_bytes(self, n: int) -> bytes:
        """Draw *n* bytes from the host entropy pool (/dev/urandom, rdrand)."""
        self._state_version += 1
        return bytes(self._entropy.getrandbits(8) for _ in range(n))

    def entropy_u64(self) -> int:
        self._state_version += 1
        return self._entropy.getrandbits(64)

    def sched_jitter(self, scale: float = 1.0) -> float:
        """A small nonnegative timing perturbation for the native scheduler."""
        self._state_version += 1
        return self._sched.random() * scale

    def sched_choice_index(self, n: int) -> int:
        """Break a scheduling tie among *n* equally-eligible threads."""
        if n > 1:
            self._state_version += 1
            return self._sched.randrange(n)
        return 0

    def aslr_base(self) -> int:
        """An address-space base for a new process."""
        if not self.aslr_enabled:
            return 0x5555_5555_0000
        page = 4096
        span = 1 << self.aslr_entropy_bits
        self._state_version += 1
        return 0x5500_0000_0000 + (self._entropy.randrange(span) * page)

    @property
    def ncores(self) -> int:
        if self.visible_cores is not None:
            return max(1, min(self.visible_cores, self.machine.cores))
        return self.machine.cores
