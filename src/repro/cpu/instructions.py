"""The irreproducible x86-64 instructions (paper §4, §5.8).

Guest programs execute instructions by yielding :class:`~repro.guest.ops.Instr`
operations.  The DES core consults the per-process :class:`TrapConfig` to
decide whether the instruction traps to the tracer (the simulated analog of
``prctl(PR_SET_TSC)`` for rdtsc and of Ivy Bridge cpuid faulting) or
executes natively with the semantics implemented here.

The instruction taxonomy from the paper:

``rdtsc``/``rdtscp``
    Cycle counter.  Trappable via prctl on any machine.
``rdrand``/``rdseed``
    Hardware entropy.  *Not* trappable from ring 0 — DetTrace instead hides
    them via cpuid masking and relies on well-behaved programs (§5.8).
``cpuid``
    Machine identification.  Trappable only with Ivy Bridge+ cpuid
    faulting and kernel >= 4.12.
``xbegin``/``xend`` (TSX)
    The one definitively *critical* family: aborts are timing-dependent
    and cannot be trapped at all (§4).
``rdpmc``
    Performance counters; configured to fault by default.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..kernel.errors import GuestCrash
from ..kernel.types import SIGILL, SIGSEGV, CpuidResult
from .machine import FEATURE_RDRAND, FEATURE_RDSEED, FEATURE_TSX, HostEnvironment

#: Instruction mnemonics understood by the simulated CPU.
RDTSC = "rdtsc"
RDTSCP = "rdtscp"
RDRAND = "rdrand"
RDSEED = "rdseed"
CPUID = "cpuid"
XBEGIN = "xbegin"
XEND = "xend"
RDPMC = "rdpmc"

#: xbegin status: transaction started.
TSX_STARTED = -1

ALL_INSTRUCTIONS = (RDTSC, RDTSCP, RDRAND, RDSEED, CPUID, XBEGIN, XEND, RDPMC)

#: Instructions the hardware can be configured to trap on (and the
#: condition on the machine).  TSX and rdrand are conspicuously absent —
#: this is the paper's central "critical instruction" observation.
def trappable(name: str, machine) -> bool:
    """Can executions of *name* be made to trap to a supervisor?"""
    if name in (RDTSC, RDTSCP, RDPMC):
        return True
    if name == CPUID:
        return machine.cpuid_faulting and machine.kernel_version_at_least(4, 12)
    return False


@dataclasses.dataclass
class TrapConfig:
    """Which instructions trap for one traced process."""

    trap_rdtsc: bool = False
    trap_cpuid: bool = False
    trap_rdpmc: bool = True

    def traps(self, name: str) -> bool:
        if name in (RDTSC, RDTSCP):
            return self.trap_rdtsc
        if name == CPUID:
            return self.trap_cpuid
        if name == RDPMC:
            return self.trap_rdpmc
        return False


class Cpu:
    """Native (irreproducible) semantics for the instruction set above.

    One instance exists per simulated kernel; per-call nondeterminism is
    drawn from the :class:`~repro.cpu.machine.HostEnvironment` entropy
    streams so that two boots give different answers.
    """

    def __init__(self, host: HostEnvironment):
        self.host = host
        self.machine = host.machine

    # -- timing -------------------------------------------------------------

    def rdtsc(self, elapsed_seconds: float) -> int:
        """Cycle count since boot, with per-read measurement noise."""
        base = int(elapsed_seconds * self.machine.freq_ghz * 1e9)
        noise = int(self.host.sched_jitter(scale=200.0))
        return base + noise

    # -- entropy ------------------------------------------------------------

    def rdrand(self) -> int:
        if not self.machine.has_rdrand:
            raise GuestCrash(SIGILL, "rdrand not supported on %s" % self.machine.microarch)
        return self.host.entropy_u64()

    def rdseed(self) -> int:
        if FEATURE_RDSEED not in self.machine.features:
            raise GuestCrash(SIGILL, "rdseed not supported on %s" % self.machine.microarch)
        return self.host.entropy_u64()

    # -- identification -----------------------------------------------------

    def cpuid(self) -> CpuidResult:
        m = self.machine
        return CpuidResult(
            vendor=m.cpu_vendor,
            brand=m.cpu_brand,
            family=m.cpu_family,
            model=m.cpu_model,
            cores=m.cores,
            features=list(m.features),
        )

    # -- transactional memory -------------------------------------------------

    def xbegin(self) -> int:
        """Start a transaction; nondeterministically abort.

        Returns :data:`TSX_STARTED` on success or an abort code.  Abort
        arrival (e.g. a timer interrupt landing mid-transaction) is
        modelled as a host-entropy coin flip — exactly the
        irreproducibility the paper proves cannot be masked.
        """
        if not self.machine.has_tsx:
            raise GuestCrash(SIGILL, "TSX not supported on %s" % self.machine.microarch)
        aborted = self.host.entropy_u64() % 4 == 0  # ~25% spurious abort rate
        return 1 if aborted else TSX_STARTED

    def xend(self) -> int:
        if not self.machine.has_tsx:
            raise GuestCrash(SIGILL, "TSX not supported on %s" % self.machine.microarch)
        return 0

    # -- performance counters --------------------------------------------------

    def rdpmc(self, elapsed_seconds: float) -> int:
        """Read a performance counter; noisy function of elapsed cycles."""
        return self.rdtsc(elapsed_seconds) // 2 + int(self.host.sched_jitter(scale=1e4))

    # -- dispatch ----------------------------------------------------------------

    def execute(self, name: str, elapsed_seconds: float) -> object:
        """Execute instruction *name* natively and return its result."""
        if name in (RDTSC, RDTSCP):
            return self.rdtsc(elapsed_seconds)
        if name == RDRAND:
            return self.rdrand()
        if name == RDSEED:
            return self.rdseed()
        if name == CPUID:
            return self.cpuid()
        if name == XBEGIN:
            return self.xbegin()
        if name == XEND:
            return self.xend()
        if name == RDPMC:
            return self.rdpmc(elapsed_seconds)
        raise GuestCrash(SIGSEGV, "illegal instruction %r" % name)
