"""A seccomp-bpf analog: selective syscall interception (paper §5.11).

Without a filter, ptrace stops the tracee twice per syscall.  A seccomp
program lets naturally-reproducible syscalls through with *no* stop, and
on kernels >= 4.8 the remaining syscalls cost a single combined event
instead of separate seccomp and ptrace stops.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..kernel.costs import (
    LEGACY_DOUBLE_STOP_COST,
    PTRACE_STOP_COST,
    SECCOMP_COMBINED_STOP_COST,
)

#: Syscalls whose results are naturally reproducible inside the container:
#: per-process, read-only or position-only state, with namespace-stable
#: answers.  Everything touching shared state (the filesystem, pipes,
#: other processes, time, randomness) must be intercepted and serialized.
NATURALLY_REPRODUCIBLE: FrozenSet[str] = frozenset({
    "getpid", "getppid", "gettid", "getuid", "getgid",
    "getcwd", "sched_yield", "lseek", "dup", "dup2",
    "umask", "prctl", "getauxval", "sigaction", "fsync",
    "fcntl", "sigprocmask", "setsid", "getgroups", "sync",
})


class SeccompFilter:
    """Decides, per syscall, whether a ptrace stop happens and its cost."""

    def __init__(self, allow: Optional[FrozenSet[str]] = None,
                 enabled: bool = True, kernel_version=(4, 15)):
        self.allow = NATURALLY_REPRODUCIBLE if allow is None else allow
        self.enabled = enabled
        self.kernel_version = tuple(kernel_version)

    def intercepts(self, name: str) -> bool:
        if not self.enabled:
            return True  # plain ptrace: everything stops
        return name not in self.allow

    @property
    def stop_cost(self) -> float:
        """Virtual seconds of context switching per intercepted syscall."""
        if not self.enabled:
            return 2 * PTRACE_STOP_COST  # entry stop + exit stop
        if self.kernel_version >= (4, 8):
            return SECCOMP_COMBINED_STOP_COST
        return LEGACY_DOUBLE_STOP_COST
