"""A seccomp-bpf analog: selective syscall interception (paper §5.11).

Without a filter, ptrace stops the tracee twice per syscall.  A seccomp
program lets naturally-reproducible syscalls through with *no* stop, and
on kernels >= 4.8 the remaining syscalls cost a single combined event
instead of separate seccomp and ptrace stops.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..kernel.costs import (
    LEGACY_DOUBLE_STOP_COST,
    PTRACE_STOP_COST,
    SECCOMP_COMBINED_STOP_COST,
)

#: Syscalls whose results are naturally reproducible inside the container:
#: per-process, read-only or position-only state, with namespace-stable
#: answers.  Everything touching shared state (the filesystem, pipes,
#: other processes, time, randomness) must be intercepted and serialized.
#:
#: ``fsync``/``sync`` look like shared-filesystem calls but are safe to
#: skip: durability is meaningless in the simulated VFS (there is no
#: volatile cache between the inode store and "disk"), so both are
#: result-only — ``sys_fsync`` validates the fd, fails with EINVAL on
#: fd kinds with no backing store (pipes, FIFOs, sockets) and otherwise
#: returns 0; ``sys_sync`` returns 0.  The verdict is a pure function of
#: the calling process's own descriptor table: no shared state is read
#: and nothing is mutated (no mtime updates, no write-back ordering
#: another process could observe), so a no-stop pass-through cannot
#: perturb any other thread's view.  ``umask`` likewise touches only the
#: caller's own creation mask.  ``tests/core/test_seccomp_audit.py``
#: pins this down.
NATURALLY_REPRODUCIBLE: FrozenSet[str] = frozenset({
    "getpid", "getppid", "gettid", "getuid", "getgid",
    "getcwd", "sched_yield", "lseek", "dup", "dup2",
    "umask", "prctl", "getauxval", "sigaction", "fsync",
    "fcntl", "sigprocmask", "setsid", "getgroups", "sync",
})


class SeccompFilter:
    """Decides, per syscall, whether a ptrace stop happens and its cost.

    The decision and cost for a given installed program are pure
    functions of the syscall name, so both are compiled once at
    construction: ``stop_cost`` is a plain attribute and per-name
    verdicts are memoized in ``_verdicts`` (the analog of the kernel
    caching a compiled cBPF program instead of re-running the filter
    source per event)."""

    def __init__(self, allow: Optional[FrozenSet[str]] = None,
                 enabled: bool = True, kernel_version=(4, 15)):
        self.allow = NATURALLY_REPRODUCIBLE if allow is None else allow
        self.enabled = enabled
        self.kernel_version = tuple(kernel_version)
        #: Virtual seconds of context switching per intercepted syscall.
        if not self.enabled:
            self.stop_cost = 2 * PTRACE_STOP_COST  # entry stop + exit stop
        elif self.kernel_version >= (4, 8):
            self.stop_cost = SECCOMP_COMBINED_STOP_COST
        else:
            self.stop_cost = LEGACY_DOUBLE_STOP_COST
        #: Compiled per-name decision table (name -> bool), filled lazily.
        self._verdicts: dict = {}

    def intercepts(self, name: str) -> bool:
        verdict = self._verdicts.get(name)
        if verdict is None:
            verdict = True if not self.enabled else name not in self.allow
            self._verdicts[name] = verdict
        return verdict
