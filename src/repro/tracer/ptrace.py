"""The ptrace analog: base class for tracers over the simulated kernel.

The kernel delivers stops by calling the ``on_*`` hooks; a tracer services
stops through the kernel's ``tracer_execute``/``tracer_resume`` surface.
Like the real ptrace tracer, this object is a *single-threaded process*:
every event it services occupies its serial timeline, which is what makes
interception overhead proportional to event rate.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..kernel.costs import TRACER_MEMORY_OP_COST
from ..kernel.ops import Syscall
from ..kernel.process import Process, Thread
from ..obs.collector import Collector
from ..obs.profiler import INTERCEPTION
from .events import TraceCounters
from .seccomp import SeccompFilter


class TracerBase:
    """Common machinery for DetTrace and the record-and-replay baseline."""

    def __init__(self, seccomp: Optional[SeccompFilter] = None):
        self.kernel = None
        self.seccomp = seccomp or SeccompFilter(enabled=False)
        self.counters = TraceCounters()
        #: Serial tracer timeline: we are busy until this virtual time.
        self.busy_until = 0.0
        #: Observability collector; replaced by the kernel's on attach.
        self.obs = Collector()
        #: Deterministic cost accrued since the current span began (sums
        #: only fixed cost constants, so it is jitter-free).
        self._span_cost = 0.0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, kernel) -> None:
        self.kernel = kernel
        kernel.attach_tracer(self)
        self.obs = kernel.obs

    # -- serial timeline -----------------------------------------------------

    def charge(self, cost: float, phase: Optional[str] = None) -> float:
        """Occupy the tracer for *cost* seconds; returns the finish time.

        *phase* attributes the cost in the virtual-time profiler
        (interception/handler/scheduler/fs — repro.obs.profiler).
        """
        start = max(self.kernel.clock.now, self.busy_until)
        self.busy_until = start + cost
        self._span_cost += cost
        if phase is not None:
            self.obs.charge(phase, cost)
        return self.busy_until

    def begin_span(self) -> None:
        """Reset the deterministic cost accumulator for a new span."""
        self._span_cost = 0.0

    def peek_memory(self, words: int = 1) -> float:
        """Account for reading tracee memory; returns the time cost."""
        self.counters.memory_reads += words
        self.obs.charge(INTERCEPTION, words * TRACER_MEMORY_OP_COST)
        return words * TRACER_MEMORY_OP_COST

    def poke_memory(self, words: int = 1) -> float:
        self.counters.memory_writes += words
        self.obs.charge(INTERCEPTION, words * TRACER_MEMORY_OP_COST)
        return words * TRACER_MEMORY_OP_COST

    # -- kernel-facing hooks (defaults) -----------------------------------------

    def intercepts(self, thread: Thread, call: Syscall) -> bool:
        return self.seccomp.intercepts(call.name)

    def traps_instruction(self, thread: Thread, name: str) -> bool:
        return False

    def on_instruction(self, thread: Thread, name: str) -> Tuple[Any, float]:
        raise NotImplementedError

    def on_trace_stop(self, thread: Thread) -> None:
        raise NotImplementedError

    def on_process_spawn(self, proc: Process) -> None:
        self.counters.process_spawns += 1

    def on_thread_spawn(self, thread: Thread) -> None:
        pass

    def on_thread_exit(self, thread: Thread) -> None:
        pass

    def on_thread_progress(self, thread: Thread) -> None:
        """A running thread committed to more compute (its deterministic
        lower bound rose); schedulers that gate on bounds re-evaluate."""
        pass

    def on_token_granted(self, thread: Thread) -> None:
        """The thread-serialization step token passed to *thread*: it is
        about to run again after queueing (§5.7).  Schedulers that keep
        an incremental index of the running set re-admit it here."""
        pass

    def on_process_exit(self, proc: Process) -> None:
        pass

    def on_execve(self, proc: Process) -> None:
        pass

    def on_busy_wait(self, thread: Thread) -> None:
        """Called when a thread exceeds the busy-wait compute budget."""
        raise NotImplementedError

    def on_quiescent(self) -> bool:
        """The kernel ran out of events; return True if we made progress."""
        return False
