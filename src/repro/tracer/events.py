"""Counters for tracer-observed events (the rows of the paper's Table 2)."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class TraceCounters:
    """Per-run event counts, named after Table 2's rows."""

    syscall_events: int = 0
    memory_reads: int = 0
    rdtsc_intercepted: int = 0
    sched_requests: int = 0
    replays_blocking: int = 0
    process_spawns: int = 0
    read_retries: int = 0
    urandom_opens: int = 0
    write_retries: int = 0
    #: Extra (not in Table 2 but useful): instruction traps, vDSO patches.
    cpuid_intercepted: int = 0
    vdso_patches: int = 0
    getdents_sorted: int = 0
    memory_writes: int = 0
    #: Deterministic fault plane (repro.faults): total injections, of
    #: which signal deliveries and short IO truncations.
    faults_injected: int = 0
    signals_injected: int = 0
    short_io_injected: int = 0
    #: Deterministic in-container sockets (repro.kernel.sockets):
    #: completed connects and accepts serviced under the tracer.
    socket_connects: int = 0
    socket_accepts: int = 0

    def add(self, other: "TraceCounters") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))

    def as_table2_rows(self):
        """(label, value) pairs in the paper's Table 2 order."""
        return [
            ("System call events", self.syscall_events),
            ("User process memory reads", self.memory_reads),
            ("rdtsc intercepted", self.rdtsc_intercepted),
            ("Requests for scheduling next process", self.sched_requests),
            ("Replays due to blocking system call", self.replays_blocking),
            ("Process spawn events", self.process_spawns),
            ("read retries", self.read_retries),
            ("/dev/urandom opens", self.urandom_opens),
            ("write retries", self.write_retries),
            ("Socket connects (in-container)", self.socket_connects),
            ("Socket accepts (in-container)", self.socket_accepts),
        ]
