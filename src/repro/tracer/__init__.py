"""ptrace/seccomp analogs for tracers over the simulated kernel."""

from .events import TraceCounters
from .ptrace import TracerBase
from .seccomp import NATURALLY_REPRODUCIBLE, SeccompFilter

__all__ = ["NATURALLY_REPRODUCIBLE", "SeccompFilter", "TraceCounters", "TracerBase"]
