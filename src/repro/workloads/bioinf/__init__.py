"""Bioinformatics workflows (paper SS7.5)."""

from .common import (
    INPUT_PATH,
    WorkloadSpec,
    driver_main,
    make_image,
    run_dettrace,
    run_native,
    synth_sequences,
    unit_weight,
    worker_main,
)
from .tools import ALL_TOOLS, CLUSTAL, HMMER, RAXML, clustal_image, hmmer_image, raxml_image, tool_image

__all__ = [
    "ALL_TOOLS",
    "CLUSTAL",
    "HMMER",
    "INPUT_PATH",
    "RAXML",
    "WorkloadSpec",
    "clustal_image",
    "driver_main",
    "hmmer_image",
    "make_image",
    "raxml_image",
    "run_dettrace",
    "run_native",
    "synth_sequences",
    "tool_image",
    "unit_weight",
    "worker_main",
]
