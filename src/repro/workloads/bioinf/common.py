"""Shared machinery for the bioinformatics workflows (paper §7.5).

All three tools follow the same process-parallel pattern the paper
describes: a driver splits the input across W worker *processes*
(static partitioning), workers write partial outputs, and the driver
merges them.  The tools differ in their compute-to-syscall ratios, which
is exactly what drives their very different DetTrace overheads.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional

from ...core.config import ContainerConfig
from ...core.container import ContainerResult, DetTrace, NativeRunner
from ...core.image import Image
from ...cpu.machine import HASWELL_XEON, HostEnvironment
from ...guest.program import with_args

INPUT_PATH = "input.fasta"
BASES = "ACGT"


def synth_sequences(n_seqs: int, length: int, tag: str) -> bytes:
    """Deterministic FASTA-ish input (part of the image: an *input*)."""
    lines: List[bytes] = []
    for i in range(n_seqs):
        digest = hashlib.sha256(("%s:%d" % (tag, i)).encode()).digest()
        seq = "".join(BASES[b & 3] for b in digest * (length // 32 + 1))[:length]
        lines.append(b">seq%d" % i)
        lines.append(seq.encode())
    return b"\n".join(lines) + b"\n"


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Sizing for one bioinformatics tool run."""

    tool: str
    n_units: int
    #: Compute work (reference seconds) for unit *i* is
    #: ``unit_work * (1 + imbalance * weight(i))``.
    unit_work: float
    imbalance: float = 0.0
    #: Serial driver work before/after the parallel phase (limits scaling).
    serial_pre: float = 0.0
    serial_post: float = 0.0
    #: Extra syscalls each unit performs (progress writes, timing polls).
    progress_writes: int = 0
    time_polls: int = 0
    #: Whether the tool salts its computation with wall time / randomness
    #: (the observed native irreproducibility for hmmer and raxml, §6.1).
    seeds_from_time: bool = False
    seeds_from_random: bool = False


def unit_weight(i: int) -> float:
    """A deterministic heavy-tailed weight in [0, 1]."""
    h = hashlib.sha256(b"unit%d" % i).digest()[0]
    return (h / 255.0) ** 3


def make_image(spec: WorkloadSpec, workers_main, worker_main,
               n_seqs: int = 64, seq_len: int = 256) -> Image:
    img = Image()
    img.add_binary("/usr/bin/" + spec.tool, with_args(workers_main, spec))
    img.add_binary("/usr/bin/%s-worker" % spec.tool, with_args(worker_main, spec))

    def setup(kernel, build_dir):
        kernel.fs.write_file(build_dir + "/" + INPUT_PATH,
                             synth_sequences(n_seqs, seq_len, spec.tool),
                             now=kernel.host.boot_epoch)

    img.on_setup(setup)
    return img


def run_native(image: Image, tool: str, nprocs: int,
               host: Optional[HostEnvironment] = None,
               timeout: float = 600.0) -> ContainerResult:
    host = host or HostEnvironment(machine=HASWELL_XEON)
    return NativeRunner(timeout=timeout).run(
        image, "/usr/bin/" + tool, argv=[tool, str(nprocs)], host=host)


def run_dettrace(image: Image, tool: str, nprocs: int,
                 host: Optional[HostEnvironment] = None,
                 config: Optional[ContainerConfig] = None,
                 timeout: float = 600.0) -> ContainerResult:
    host = host or HostEnvironment(machine=HASWELL_XEON)
    cfg = config or ContainerConfig()
    cfg = dataclasses.replace(cfg, timeout=timeout)
    return DetTrace(cfg).run(
        image, "/usr/bin/" + tool, argv=[tool, str(nprocs)], host=host)


# ---------------------------------------------------------------------------
# The generic driver/worker pair (closed over a WorkloadSpec).
# ---------------------------------------------------------------------------

def driver_main(sys, spec: WorkloadSpec):
    """Split units across W workers; merge partial outputs."""
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    yield from sys.read_file(INPUT_PATH)
    if spec.serial_pre:
        yield from sys.compute(spec.serial_pre)
    pids = []
    for w in range(nprocs):
        pid = yield from sys.spawn(
            "/usr/bin/%s-worker" % spec.tool,
            argv=["%s-worker" % spec.tool, str(w), str(nprocs)])
        pids.append(pid)
    remaining = set(pids)
    while remaining:
        res = yield from sys.waitpid(-1)
        if res.pid in remaining:
            remaining.discard(res.pid)
            if res.exit_code != 0:
                yield from sys.eprintln("%s: worker failed" % spec.tool)
                return 1
    # Merge phase: serial.
    parts = []
    for w in range(nprocs):
        parts.append((yield from sys.read_file("part_%d.out" % w)))
    if spec.serial_post:
        yield from sys.compute(spec.serial_post)
    yield from sys.write_file("%s.out" % spec.tool, b"".join(parts))
    yield from sys.println("%s: done (%d workers)" % (spec.tool, nprocs))
    return 0


def worker_main(sys, spec: WorkloadSpec):
    """Process units [index::stride]; write one partial output file."""
    index = int(sys.argv[1])
    stride = int(sys.argv[2])
    seed_salt = b""
    if spec.seeds_from_time:
        t = yield from sys.gettimeofday()  # vDSO: invisible to naive tracers
        seed_salt += b"%f" % t
    if spec.seeds_from_random:
        seed_salt += (yield from sys.urandom(8))
    out: List[bytes] = []
    for i in range(index, spec.n_units, stride):
        work = spec.unit_work * (1.0 + spec.imbalance * unit_weight(i))
        yield from sys.compute(work)
        for _ in range(spec.time_polls):
            yield from sys.gettimeofday()
        score = int.from_bytes(
            hashlib.sha256(b"%s:%d:%s" % (spec.tool.encode(), i, seed_salt))
            .digest()[:4], "big")
        out.append(b"unit %d score %d\n" % (i, score))
        for _ in range(spec.progress_writes):
            yield from sys.write(1, b"%s: unit %d done\n" % (spec.tool.encode(), i))
    yield from sys.write_file("part_%d.out" % index, b"".join(out))
    return 0
