"""The three bioinformatics tools (paper §6, §7.5).

* **clustal** (Clustal 2.1 -ALIGN analog): multiple sequence alignment.
  Heavily compute-bound, coarse uneven chunks — scales to ~4.2x at 16
  processes and is nearly free under DetTrace.  Natively reproducible.
* **hmmer** (HMMER 3.1b2 analog): profile HMM search.  Moderate syscall
  rate (progress output + timing polls), salts its scores with wall
  time — natively irreproducible (hashdeep catches it).
* **raxml** (RAxML 8.2.10 analog): phylogenetic trees.  Frequent small
  stdout writes and timing polls (the paper measured >55k syscalls/sec
  with 16 processes), random starting trees seeded from the clock —
  natively irreproducible and the most expensive under DetTrace.
"""

from __future__ import annotations

from ...core.image import Image
from .common import WorkloadSpec, driver_main, make_image, worker_main

CLUSTAL = WorkloadSpec(
    tool="clustal",
    n_units=2000,
    unit_work=3.5e-4,
    imbalance=0.8,
    serial_pre=0.03,
    serial_post=0.12,
    progress_writes=1,
    time_polls=0,
    seeds_from_time=False,
    seeds_from_random=False,
)

HMMER = WorkloadSpec(
    tool="hmmer",
    n_units=1500,
    unit_work=2.3e-4,
    imbalance=0.5,
    serial_pre=0.006,
    serial_post=0.025,
    progress_writes=1,
    time_polls=1,
    seeds_from_time=True,
)

RAXML = WorkloadSpec(
    tool="raxml",
    n_units=2400,
    unit_work=1.1e-4,
    imbalance=0.4,
    serial_pre=0.004,
    serial_post=0.012,
    progress_writes=2,
    time_polls=2,
    seeds_from_time=True,
)

ALL_TOOLS = {"clustal": CLUSTAL, "hmmer": HMMER, "raxml": RAXML}


def tool_image(spec: WorkloadSpec) -> Image:
    return make_image(spec, driver_main, worker_main)


def clustal_image() -> Image:
    return tool_image(CLUSTAL)


def hmmer_image() -> Image:
    return tool_image(HMMER)


def raxml_image() -> Image:
    return tool_image(RAXML)
