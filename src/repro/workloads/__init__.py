"""Evaluation workloads: Debian builds, bioinformatics, machine learning."""
