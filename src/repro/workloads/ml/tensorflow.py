"""TensorFlow analog: threaded SGD training (paper §7.6).

The model is a small linear regressor trained with minibatch SGD.  Like
real TensorFlow on CPU, each step fans a batch of shards out to a worker
thread pool; workers accumulate gradients into a shared float32 buffer
under a futex lock.  The two native irreproducibility sources the paper
calls out are both present:

* the training batch is sampled with an RNG seeded from ``/dev/urandom``
  and the wall clock — different every run;
* gradient accumulation order depends on thread scheduling, and float32
  addition is not associative — so even *serialized* native runs differ
  (via sampling), and parallel runs differ more.

Under DetTrace, the PRNG and logical clock pin the sampling and thread
serialization pins the accumulation order: the recorded per-step loss
values become bit-identical across runs, with no code changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional

import numpy as np

from ...core.config import ContainerConfig
from ...core.container import ContainerResult, DetTrace, NativeRunner
from ...core.image import Image
from ...cpu.machine import HASWELL_XEON, HostEnvironment
from ...guest.program import with_args
from ...kernel.errors import Errno, SyscallError

LOSS_FILE = "losses.txt"


@dataclasses.dataclass(frozen=True)
class TfConfig:
    """One training workload (the paper uses the alexnet and cifar10
    tutorials; these configs mirror their relative compute/lock mix)."""

    name: str
    steps: int = 6
    shards_per_step: int = 32
    #: Compute work per gradient shard (reference seconds).
    shard_work: float = 1.0e-3
    #: Extra lock round-trips per shard (alexnet's op graph synchronizes
    #: more per unit of compute than cifar10's).
    lock_rounds: int = 2
    #: Serial work the main thread does per step (sampling, weight update).
    serial_work: float = 1.0e-3
    features: int = 16
    threads: int = 16
    learning_rate: float = 0.05


ALEXNET = TfConfig(name="alexnet", shards_per_step=64, shard_work=6.0e-4,
                   lock_rounds=4, serial_work=1.0e-3)
CIFAR10 = TfConfig(name="cifar10", shard_work=1.6e-3, lock_rounds=1,
                   serial_work=1.4e-3)


def _dataset(cfg: TfConfig) -> np.ndarray:
    """Deterministic synthetic training data (an *input*)."""
    seed = int.from_bytes(hashlib.sha256(cfg.name.encode()).digest()[:4], "big")
    rng = np.random.RandomState(seed)
    return rng.standard_normal((256, cfg.features)).astype(np.float32)


def _xorshift(state: int) -> int:
    state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
    state ^= state >> 7
    state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
    return state & 0xFFFFFFFFFFFFFFFF


def _sample_indices(seed: int, n: int, count: int) -> List[int]:
    out = []
    state = seed or 1
    for _ in range(count):
        state = _xorshift(state)
        out.append(state % n)
    return out


def _shard_gradient(data: np.ndarray, weights: np.ndarray,
                    indices: List[int]) -> np.ndarray:
    """Least-squares gradient for one shard, in float32."""
    x = data[indices]
    target = np.float32(1.0)
    err = (x @ weights) - target
    return (x.T @ err).astype(np.float32) / np.float32(len(indices))


def tf_worker(sys, cfg: TfConfig, shard_indices):
    """One pool thread: drain the shard queue, accumulate gradients."""
    data = sys.mem["tf_data"]
    weights = sys.mem["tf_weights"]
    while True:
        yield from sys.lock_acquire("tf_queue_lock")
        queue = sys.mem["tf_queue"]
        shard = queue.pop() if queue else None
        yield from sys.lock_release("tf_queue_lock")
        if shard is None:
            break
        grad = _shard_gradient(data, weights, shard)
        yield from sys.compute(cfg.shard_work)
        for _ in range(max(0, cfg.lock_rounds - 1)):
            yield from sys.lock_acquire("tf_queue_lock")
            yield from sys.lock_release("tf_queue_lock")
        yield from sys.lock_acquire("tf_accum_lock")
        # float32 accumulation: order-sensitive rounding.
        sys.mem["tf_grad"] = (sys.mem["tf_grad"] + grad).astype(np.float32)
        sys.mem["tf_done"] += 1
        done = sys.mem["tf_done"]
        yield from sys.lock_release("tf_accum_lock")
        if done == sys.mem["tf_total"]:
            # Proper futex protocol: bump the futex word, then wake, so
            # the waiter's value check closes the lost-wakeup window.
            sys.mem["tf_step_done"] = sys.mem.get("tf_step_done", 0) + 1
            yield from sys.futex_wake("tf_step_done")
    return 0


def tf_main(sys, cfg: TfConfig):
    """The training driver."""
    data = _dataset(cfg)
    sys.mem["tf_data"] = data
    weights = np.zeros(cfg.features, dtype=np.float32)
    losses: List[bytes] = []
    for step in range(cfg.steps):
        # Irreproducible batch sampling: urandom + wall clock seed.
        rnd = yield from sys.urandom(8)
        t = yield from sys.gettimeofday()
        seed = int.from_bytes(rnd, "little") ^ int(t * 1e6)
        batch = _sample_indices(seed, len(data), cfg.shards_per_step * 8)
        shards = [batch[i::cfg.shards_per_step] for i in range(cfg.shards_per_step)]
        yield from sys.compute(cfg.serial_work)

        sys.mem["tf_weights"] = weights
        sys.mem["tf_grad"] = np.zeros(cfg.features, dtype=np.float32)
        sys.mem["tf_done"] = 0
        sys.mem["tf_total"] = len(shards)

        if cfg.threads <= 1:
            for shard in shards:
                grad = _shard_gradient(data, weights, shard)
                yield from sys.compute(cfg.shard_work)
                sys.mem["tf_grad"] = (sys.mem["tf_grad"] + grad).astype(np.float32)
        else:
            sys.mem["tf_queue"] = list(shards)
            for _ in range(cfg.threads):
                yield from sys.spawn_thread(
                    with_args(tf_worker, cfg, None))
            while sys.mem["tf_done"] < sys.mem["tf_total"]:
                observed = sys.mem.get("tf_step_done", 0)
                if sys.mem["tf_done"] >= sys.mem["tf_total"]:
                    break
                try:
                    yield from sys.futex_wait("tf_step_done", observed)
                except SyscallError as err:
                    if err.errno != Errno.EAGAIN:
                        raise

        grad = sys.mem["tf_grad"]
        weights = (weights - np.float32(cfg.learning_rate) * grad).astype(np.float32)
        x = data[batch[:64]]
        err = (x @ weights) - np.float32(1.0)
        loss = float(np.float32(np.mean(err * err)))
        line = b"step %d loss %.9g\n" % (step, loss)
        losses.append(line)
        yield from sys.write(1, line)
    yield from sys.write_file(LOSS_FILE, b"".join(losses))
    return 0


def tf_image(cfg: TfConfig) -> Image:
    img = Image()
    img.add_binary("/usr/bin/tensorflow", with_args(tf_main, cfg))
    return img


def _host(seed: int = 0) -> HostEnvironment:
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed)


def run_parallel_native(cfg: TfConfig,
                        host: Optional[HostEnvironment] = None) -> ContainerResult:
    return NativeRunner().run(tf_image(cfg), "/usr/bin/tensorflow",
                              host=host or _host())


def run_serial_native(cfg: TfConfig,
                      host: Optional[HostEnvironment] = None) -> ContainerResult:
    serial = dataclasses.replace(cfg, threads=1)
    return NativeRunner().run(tf_image(serial), "/usr/bin/tensorflow",
                              host=host or _host())


def run_dettrace(cfg: TfConfig, host: Optional[HostEnvironment] = None,
                 config: Optional[ContainerConfig] = None) -> ContainerResult:
    return DetTrace(config or ContainerConfig()).run(
        tf_image(cfg), "/usr/bin/tensorflow", host=host or _host())


def losses_of(result: ContainerResult) -> List[str]:
    data = result.output_tree.get(LOSS_FILE, b"")
    return data.decode().splitlines()
