"""Machine-learning workload: the TensorFlow analog (paper SS7.6)."""

from .tensorflow import (
    ALEXNET,
    CIFAR10,
    LOSS_FILE,
    TfConfig,
    losses_of,
    run_dettrace,
    run_parallel_native,
    run_serial_native,
    tf_image,
    tf_main,
)

__all__ = [
    "ALEXNET",
    "CIFAR10",
    "LOSS_FILE",
    "TfConfig",
    "losses_of",
    "run_dettrace",
    "run_parallel_native",
    "run_serial_native",
    "tf_image",
    "tf_main",
]
