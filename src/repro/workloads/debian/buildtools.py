"""The synthetic Debian build toolchain, as guest programs.

Each function is a guest program factory bound to a
:class:`~repro.workloads.debian.package.PackageSpec` (every package build
boots a fresh kernel, so binding the spec into the image is equivalent to
reading it from a build recipe on disk).

The toolchain deliberately reproduces the irreproducibility vectors the
paper found in real builds:

* ``configure`` performs the GNU-autotools clock-skew sanity check that
  forced DetTrace to implement *sensible* virtual mtimes (§5.5);
* ``gcc`` derives temp-file names from rdtsc+pid (§7.4), reads
  ``/dev/urandom`` for symbol seeds, and embeds __DATE__/__FILE__;
* ``make -jN`` runs compilers in parallel and reaps them with wait4;
* ``ld`` links objects in readdir order when the package is sloppy;
* ``tar``/``dpkg-deb`` record mtimes/uid/gid in archive headers (§6.1).
"""

from __future__ import annotations

import hashlib

from ...guest.libc import format_date, tmpnam
from ...kernel.errors import Errno, SyscallError
from ...kernel.types import O_APPEND, O_CREAT, O_WRONLY, SIGTERM
from .archive import TarEntry, cpio_pack, deb_pack, tar_pack
from .package import PackageSpec

#: Paths where the toolchain binaries live inside the image.
TOOLS = {
    "driver": "/usr/bin/dpkg-buildpackage",
    "configure": "/usr/bin/configure",
    "make": "/usr/bin/make",
    "gcc": "/usr/bin/gcc",
    "ld": "/usr/bin/ld",
    "doc_gen": "/usr/bin/doc-gen",
    "jvm": "/usr/bin/jvm",
    "license_check": "/usr/bin/license-check",
    "watchdog": "/usr/bin/watchdog",
    "test_runner": "/usr/bin/test-runner",
    "dpkg_deb": "/usr/bin/dpkg-deb",
    "pycc": "/usr/bin/pycc",
    "logger": "/usr/bin/logger",
}


def _digest(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for c in chunks:
        h.update(c)
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# configure
# ---------------------------------------------------------------------------

def configure_main(sys, spec: PackageSpec):
    """Feature probing + the clock-skew check + config.h generation."""
    # GNU autotools clock-skew sanity check: a fresh file must not look
    # older than the source tree (§5.5).
    yield from sys.write_file("conftest.tmp", b"int main(){}\n")
    st_new = yield from sys.stat("conftest.tmp")
    st_src = yield from sys.stat(spec.source_path(0))
    yield from sys.unlink("conftest.tmp")
    if st_new.st_mtime < st_src.st_mtime:
        yield from sys.eprintln("configure: error: clock skew detected; "
                                "build environment is insane")
        return 1
    # `gcc --version | head` style probe: one read against a drip-fed
    # pipe — the partial-read idiom DetTrace's retry injection hides.
    rfd, wfd = yield from sys.pipe()
    pid = yield from sys.spawn(TOOLS["gcc"], argv=["gcc", "--version"],
                               stdout=wfd, close_fds=[rfd])
    yield from sys.close(wfd)
    banner = yield from sys.read(rfd, 75)
    yield from sys.close(rfd)
    yield from sys.waitpid(pid)
    if not banner.startswith(b"gcc"):
        yield from sys.eprintln("configure: error: no usable compiler")
        return 1
    for tool in ("gcc", "ld", "tar", "sh", "dpkg-deb"):
        yield from sys.access("/usr/bin/" + tool)
        yield from sys.compute(1e-5)
    # Feature probes: one temp compile-and-stat per feature.
    for feature in range(6):
        yield from sys.write_file("conf_%d.tmp" % feature, b"probe")
        yield from sys.stat("conf_%d.tmp" % feature)
        yield from sys.unlink("conf_%d.tmp" % feature)
        yield from sys.compute(3e-5)
    yield from sys.compute(2e-3)

    lines = ["#define PACKAGE \"%s\"" % spec.name,
             "#define VERSION \"%s\"" % spec.version]
    if spec.embeds_timestamp:
        t = yield from sys.time()
        lines.append("#define BUILD_TIME %d" % t)
    if spec.embeds_build_path:
        cwd = yield from sys.getcwd()
        lines.append("#define SRCDIR \"%s\"" % cwd)
    if spec.embeds_uname:
        un = yield from sys.uname()
        lines.append("#define BUILD_HOST \"%s %s %s\""
                     % (un.nodename, un.release, un.machine))
    if spec.embeds_pid:
        pid = yield from sys.getpid()
        lines.append("#define BUILD_PID %d" % pid)
    if spec.embeds_env:
        lines.append("#define BUILD_PATHVAR \"%s\"" % sys.getenv("PATH"))
    if spec.embeds_cpu_count:
        si = yield from sys.sysinfo()
        lines.append("#define NCPU %d" % si.nprocs)
    if spec.embeds_tree_size:
        total = 0
        st_dir = yield from sys.stat("src")
        total += st_dir.st_size
        for name in sorted((yield from sys.listdir("src"))):
            st = yield from sys.stat("src/" + name)
            total += st.st_size
        lines.append("#define SRC_TREE_BYTES %d" % total)
    if spec.embeds_benchmark:
        t0 = yield from sys.rdtsc()
        yield from sys.compute(1e-5)
        t1 = yield from sys.rdtsc()
        lines.append("#define TIMING_CALIB %d" % (t1 - t0))
    yield from sys.write_file("config.h", "\n".join(lines) + "\n")
    return 0


# ---------------------------------------------------------------------------
# gcc
# ---------------------------------------------------------------------------

def gcc_main(sys, spec: PackageSpec):
    """Compile argv[1] -> argv[2]; `gcc --version` prints its banner."""
    if len(sys.argv) > 1 and sys.argv[1] == "--version":
        # The banner is flushed line by line with work in between, so a
        # reader on the other end of a pipe sees partial reads (§5.5).
        for line in (b"gcc (Debian 4.7.2-5) 4.7.2\n",
                     b"Copyright (C) 2012 FSF\n",
                     b"This is free software.\n"):
            yield from sys.write_all(1, line)
            yield from sys.compute(2e-4)
        return 0
    src, out = sys.argv[1], sys.argv[2]
    src_data = yield from sys.read_file(src)
    cfg = yield from sys.read_file("config.h")

    # Include-path probing: most of a compiler's syscall traffic is
    # failed open/stat probes along the search path, with parsing work
    # interleaved between them.
    for i in range(spec.include_probes):
        yield from sys.access("/usr/lib/include_%d.h" % i)
        yield from sys.compute(2e-5)

    # Intermediate file with an rdtsc+pid-derived "unique" name (§7.4);
    # create/unlink churn also exercises inode recycling (§5.5).
    tmp = yield from tmpnam(sys, prefix="/tmp/cc")
    yield from sys.write_file(tmp, src_data[:64])
    yield from sys.read_file(tmp)
    yield from sys.unlink(tmp)

    kloc = max(1, spec.loc_per_source) / 1000.0
    yield from sys.compute(kloc * spec.compute_per_kloc)

    lines = [b"OBJ %s" % src.encode(),
             b"HASH %s" % _digest(src_data, cfg).encode()]
    # Link against installed build-dependencies: their artifact bytes
    # feed ours, so irreproducibility cascades down the chain (§2).
    for dep in spec.build_depends:
        dep_lib = "/usr/installed/%s/dist/lib%s.so" % (dep, dep)
        dep_bytes = yield from sys.read_file(dep_lib)
        lines.append(b"DEP %s %s" % (dep.encode(), _digest(dep_bytes).encode()))
    if spec.embeds_random_symbols:
        seed = yield from sys.urandom(4)
        lines.append(b"SYM anon_%s" % seed.hex().encode())
    if spec.embeds_tmpnames:
        lines.append(b"DEBUG tmpfile=%s" % tmp.encode())
    if spec.embeds_build_path:
        cwd = yield from sys.getcwd()
        lines.append(b"FILE %s/%s" % (cwd.encode(), src.encode()))
    if spec.embeds_timestamp:
        t = yield from sys.time()
        lines.append(b"DATE %d" % t)
    if spec.embeds_aslr:
        lines.append(b"MAINADDR %x" % sys.address_of_main)
    yield from sys.write_file(out, b"\n".join(lines) + b"\n")

    if spec.embeds_parallel_order:
        fd = yield from sys.open("obj/index.txt", O_WRONLY | O_CREAT | O_APPEND)
        yield from sys.write_all(fd, b"IDX %s\n" % src.encode())
        yield from sys.close(fd)
    return 0


# ---------------------------------------------------------------------------
# make
# ---------------------------------------------------------------------------

def make_main(sys, spec: PackageSpec):
    """Parallel compilation: up to parallel_jobs concurrent gcc children."""
    names = yield from sys.listdir("src")
    candidates = ["src/" + n for n in names]
    # Dependency check, mtime-comparison style: a source is recompiled
    # only when its object is missing or older — the exact comparison
    # DetTrace's *sensible* virtual mtimes must keep working (§5.5).
    pending = []
    for src in candidates:
        st_src = yield from sys.stat(src)
        yield from sys.compute(5e-6)
        obj = "obj/" + src.split("/")[-1] + ".o"
        if not (yield from sys.access(obj)):
            pending.append(src)
            continue
        st_obj = yield from sys.stat(obj)
        yield from sys.compute(5e-6)
        if st_obj.st_mtime < st_src.st_mtime:
            pending.append(src)
    if not pending:
        yield from sys.println("make: nothing to be done")
        return 0
    running = {}
    jobs = max(1, spec.parallel_jobs)
    failures = 0
    while pending or running:
        while pending and len(running) < jobs:
            src = pending.pop(0)
            obj = "obj/" + src.split("/")[-1] + ".o"
            pid = yield from sys.spawn(TOOLS["gcc"], argv=["gcc", src, obj])
            running[pid] = src
        res = yield from sys.waitpid(-1)
        src = running.pop(res.pid, None)
        if src is not None and res.exit_code != 0:
            yield from sys.eprintln("make: *** [%s] Error %s" % (src, res.exit_code))
            failures += 1
    return 2 if failures else 0


# ---------------------------------------------------------------------------
# ld
# ---------------------------------------------------------------------------

def ld_main(sys, spec: PackageSpec):
    """Link objects; sloppy packages use raw readdir order (§5.5)."""
    names = yield from sys.listdir("obj")
    objs = [n for n in names if n.endswith(".o")]
    if not spec.embeds_fileorder:
        objs = sorted(objs)
    parts = [b"LINK %s %s" % (spec.name.encode(), spec.version.encode())]
    for name in objs:
        parts.append((yield from sys.read_file("obj/" + name)))
    yield from sys.compute(8e-4 * max(1, len(objs)))
    yield from sys.write_file("dist/lib%s.so" % spec.name, b"\n".join(parts))

    if spec.embeds_inode:
        entries = []
        src_names = yield from sys.listdir("src")
        for name in sorted(src_names):
            st = yield from sys.stat("src/" + name)
            content = yield from sys.read_file("src/" + name)
            entries.append((name, st.st_ino, content))
        yield from sys.write_file("dist/sources.cpio", cpio_pack(entries))
    return 0


def pycc_main(sys, spec: PackageSpec):
    """Bytecode-compile the sources, embedding each source's mtime in the
    cache header — exactly what CPython's .pyc format does, and one of
    the Debian Reproducible Builds project's classic findings."""
    names = yield from sys.listdir("src")
    for name in sorted(names):
        st = yield from sys.stat("src/" + name)
        source = yield from sys.read_file("src/" + name)
        header = b"PYC1 mtime=%d size=%d\n" % (int(st.st_mtime), st.st_size)
        body = _digest(source).encode()
        yield from sys.write_file("dist/%s.pyc" % name, header + body)
        yield from sys.compute(5e-5)
    return 0


# ---------------------------------------------------------------------------
# auxiliary build steps
# ---------------------------------------------------------------------------

def doc_gen_main(sys, spec: PackageSpec):
    if spec.embeds_locale_date:
        t = yield from sys.time()
        date = format_date(t, sys.getenv("TZ", "UTC"), sys.getenv("LANG", "C"))
    else:
        date = "TIMELESS"
    text = "Documentation for %s\nGenerated: %s\n" % (spec.name, date)
    yield from sys.write_file("dist/README", text)
    return 0


def jvm_main(sys, spec: PackageSpec):
    """A JVM-style threaded runtime (§5.7, §7.1.1).

    Well-behaved packages synchronize through futexes (expensive but
    supported under DetTrace: each futex wait becomes a non-blocking
    probe plus replays).  Busy-waiting packages spin on shared memory
    instead, which DetTrace's serializing scheduler cannot make progress
    past — the single largest unsupported-package cause in the paper.
    """

    def worker(wsys):
        for _ in range(8):
            yield from wsys.lock_acquire("jvm_lock")
            wsys.mem["jvm_counter"] = wsys.mem.get("jvm_counter", 0) + 1
            yield from wsys.lock_release("jvm_lock")
            yield from wsys.compute(2e-4)
        wsys.mem["jvm_done"] = 1
        yield from wsys.futex_wake("jvm_done")

    yield from sys.spawn_thread(worker)
    if spec.busy_waits:
        yield from sys.spin_until("jvm_done", 1, spin_work=0.05)
    else:
        while sys.mem.get("jvm_done") != 1:
            yield from sys.lock_acquire("jvm_lock")
            yield from sys.lock_release("jvm_lock")
            try:
                yield from sys.futex_wait("jvm_done", 0)
            except SyscallError as err:
                if err.errno != Errno.EAGAIN:
                    raise
    yield from sys.println("jvm: bytecode verified, counter=%d"
                           % sys.mem.get("jvm_counter", 0))
    return 0


def license_check_main(sys, spec: PackageSpec):
    """Phones home during the build; the reply taints the artifacts."""
    fd = yield from sys.socket()
    yield from sys.connect(fd, "license.example.com:443")
    yield from sys.write_all(fd, b"GET /license\r\n")
    reply = yield from sys.read(fd, 64)
    yield from sys.close(fd)
    yield from sys.write_file("dist/license.txt", reply)
    return 0


def watchdog_main(sys, spec: PackageSpec):
    """Polls for a stop flag until killed by the build driver."""
    while True:
        present = yield from sys.access("stop.flag")
        if present:
            return 0
        yield from sys.sleep(0.05)


def test_runner_main(sys, spec: PackageSpec):
    """Run the built artifact's test suite (used for §7.2 correctness).

    Outcomes depend only on the *stable* parts of the artifact (the
    object inventory), so a correctly-functioning package passes the same
    tests whether it was built natively or under DetTrace.
    """
    lib = yield from sys.read_file("dist/lib%s.so" % spec.name)
    n_objs = lib.count(b"OBJ ")
    yield from sys.compute(1.5e-3 * max(1, n_objs))
    passed = 0
    failed = 0
    for i in range(n_objs * 3):
        if b"HASH " in lib:
            passed += 1
        else:
            failed += 1
    expected_fail = 1 if spec.language == "cpp" else 0
    yield from sys.println("tests: %d passed, %d failed, %d expected-fail"
                           % (passed, failed, expected_fail))
    yield from sys.write_file("test.log",
                              "passed=%d failed=%d xfail=%d\n"
                              % (passed, failed, expected_fail))
    return 0 if failed == 0 else 1


def logger_main(sys, spec: PackageSpec):
    """Drain stdin to the build log (the pipe reader for the summary)."""
    total = 0
    while True:
        chunk = yield from sys.read(0, 16384)
        if not chunk:
            break
        total += len(chunk)
        yield from sys.compute(5e-5)
    yield from sys.write_file("build.log.size", b"%d" % total)
    return 0


# ---------------------------------------------------------------------------
# packaging
# ---------------------------------------------------------------------------

def dpkg_deb_main(sys, spec: PackageSpec):
    """tar up dist/ + config.h and wrap the .deb (§6.1)."""
    names = yield from sys.listdir("dist")
    if not spec.embeds_fileorder:
        names = sorted(names)
    paths = ["config.h"] + ["dist/" + n for n in names]
    entries = []
    for path in paths:
        st = yield from sys.stat(path)
        content = yield from sys.read_file(path)
        entries.append(TarEntry(name=path, mode=st.st_mode & 0o777,
                                uid=st.st_uid, gid=st.st_gid,
                                mtime=st.st_mtime, content=content))
    data_tar = tar_pack(entries)
    fields = {"Architecture": "amd64", "Section": spec.language}
    if spec.embeds_timestamp:
        t = yield from sys.time()
        fields["Build-Date"] = str(t)
    deb = deb_pack(spec.name, spec.version, fields, data_tar)
    yield from sys.write_file("%s_%s.deb" % (spec.name, spec.version), deb)
    return 0


# ---------------------------------------------------------------------------
# the build driver
# ---------------------------------------------------------------------------

def dpkg_buildpackage_main(sys, spec: PackageSpec):
    """Top-level driver: configure; make; link; extras; package."""
    if spec.uses_misc_unsupported:
        yield from sys.syscall("perf_event_open", config=1)
    if spec.exotic_ioctl:
        try:
            yield from sys.ioctl(1, "TCGETS2")
        except SyscallError as err:
            if err.errno != Errno.ENOTTY:
                raise
    watchdog_pid = None
    if spec.sends_cross_signals:
        watchdog_pid = yield from sys.spawn(TOOLS["watchdog"])

    yield from sys.mkdir_p("obj")
    yield from sys.mkdir_p("dist")

    for step, tool in (("configure", "configure"), ("make", "make"),
                       ("ld", "ld")):
        res = yield from sys.run(TOOLS[tool], argv=[step])
        if res.exit_code != 0:
            yield from sys.eprintln("dpkg-buildpackage: %s failed (%s)"
                                    % (step, res.exit_code))
            return 2

    yield from sys.run(TOOLS["doc_gen"])
    if spec.embeds_source_mtime:
        res = yield from sys.run(TOOLS["pycc"])
        if res.exit_code != 0:
            return 2
    if spec.uses_threads or spec.language == "java" or spec.busy_waits:
        res = yield from sys.run(TOOLS["jvm"])
        if res.exit_code != 0:
            return 2
    if spec.uses_sockets:
        res = yield from sys.run(TOOLS["license_check"])
        if res.exit_code != 0:
            return 2
    if spec.has_tests:
        res = yield from sys.run(TOOLS["test_runner"])
        if res.exit_code != 0:
            yield from sys.eprintln("dpkg-buildpackage: tests failed")
            return 2

    if spec.syscall_storm:
        fd = yield from sys.open("obj/.scratch", O_WRONLY | O_CREAT)
        for _ in range(spec.syscall_storm):
            yield from sys.write(fd, b"x")
        yield from sys.close(fd)

    if watchdog_pid is not None:
        yield from sys.kill(watchdog_pid, SIGTERM)
        yield from sys.waitpid(watchdog_pid)

    res = yield from sys.run(TOOLS["dpkg_deb"])
    if res.exit_code != 0:
        return 2

    # Stream the build summary through the logger pipe in one write: the
    # pipe buffer is smaller than the summary, so the kernel accepts it
    # piecemeal (write retries under DetTrace, Table 2).
    rfd, wfd = yield from sys.pipe()
    summary = (b"summary: %s\n" % spec.name.encode()) * 6000
    logger_pid = yield from sys.spawn(TOOLS["logger"], stdin=rfd,
                                      close_fds=[wfd])
    yield from sys.close(rfd)
    yield from sys.write(wfd, summary)
    yield from sys.close(wfd)
    yield from sys.waitpid(logger_pid)

    yield from sys.println("dpkg-buildpackage: built %s_%s.deb"
                           % (spec.name, spec.version))
    return 0
