"""Build harness: assemble a package image and build it, either natively
or inside DetTrace, then classify the outcome the way §7.1 does."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ...core.config import ContainerConfig
from ...core.container import ContainerResult, DetTrace, NativeRunner, OK, TIMEOUT, UNSUPPORTED
from ...core.image import Image
from ...cpu.machine import HostEnvironment
from ...guest.program import with_args
from .buildtools import (
    TOOLS,
    configure_main,
    doc_gen_main,
    dpkg_buildpackage_main,
    dpkg_deb_main,
    gcc_main,
    jvm_main,
    ld_main,
    license_check_main,
    logger_main,
    make_main,
    pycc_main,
    test_runner_main,
    watchdog_main,
)
from .package import PackageSpec, source_content

#: Virtual-seconds budget for one DetTrace package build (the paper's 2h,
#: scaled to our package sizes).  Baseline builds get twice that.
DEFAULT_BUILD_TIMEOUT = 0.6

#: Build statuses (§7.1).
BUILT = "built"
FAILED = "failed"

_FACTORIES = {
    "driver": dpkg_buildpackage_main,
    "configure": configure_main,
    "make": make_main,
    "gcc": gcc_main,
    "ld": ld_main,
    "doc_gen": doc_gen_main,
    "jvm": jvm_main,
    "license_check": license_check_main,
    "watchdog": watchdog_main,
    "test_runner": test_runner_main,
    "dpkg_deb": dpkg_deb_main,
    "pycc": pycc_main,
    "logger": logger_main,
}


def package_image(spec: PackageSpec) -> Image:
    """The initial filesystem for building *spec*: toolchain + sources."""
    img = Image()
    for key, path in TOOLS.items():
        img.add_binary(path, with_args(_FACTORIES[key], spec))
    # Plain files configure probes for but nobody executes.
    img.add_file("/usr/bin/tar", b"#!ELF tar", mode=0o755)
    img.add_file("/usr/bin/sh", b"#!ELF sh", mode=0o755)
    img.add_file("/usr/bin/dpkg-deb", b"#!ELF dpkg-deb", mode=0o755)

    def setup(kernel, build_dir):
        now = kernel.host.boot_epoch
        for i in range(spec.n_sources):
            kernel.fs.write_file(build_dir + "/" + spec.source_path(i),
                                 source_content(spec, i), now=now)
        control = b"Source: %s\nVersion: %s\n" % (spec.name.encode(),
                                                   spec.version.encode())
        if spec.build_depends:
            control += b"Build-Depends: %s\n" % ", ".join(
                spec.build_depends).encode()
        kernel.fs.write_file(build_dir + "/debian/control", control, now=now)

    img.on_setup(setup)
    return img


@dataclasses.dataclass
class BuildRecord:
    """One package build plus its §7.1 classification."""

    spec: PackageSpec
    status: str  # built | failed | unsupported | timeout
    result: ContainerResult

    @property
    def artifacts(self) -> Dict[str, bytes]:
        """The .deb outputs (what reprotest compares bitwise)."""
        return {path: data for path, data in self.result.output_tree.items()
                if path.endswith(".deb")}

    @property
    def deb(self) -> Optional[bytes]:
        for path in sorted(self.artifacts):
            return self.artifacts[path]
        return None


def _classify(result: ContainerResult) -> str:
    if result.status == UNSUPPORTED:
        return "unsupported"
    if result.status == TIMEOUT:
        return "timeout"
    if result.status == OK and result.exit_code == 0:
        return BUILT
    return FAILED


def build_native(spec: PackageSpec, host: Optional[HostEnvironment] = None,
                 timeout: float = 2 * DEFAULT_BUILD_TIMEOUT) -> BuildRecord:
    """Build *spec* with no tracer (the reprotest baseline)."""
    result = NativeRunner(timeout=timeout).run(
        package_image(spec), TOOLS["driver"],
        argv=["dpkg-buildpackage", spec.name], host=host)
    return BuildRecord(spec=spec, status=_classify(result), result=result)


def build_dettrace(spec: PackageSpec,
                   config: Optional[ContainerConfig] = None,
                   host: Optional[HostEnvironment] = None,
                   timeout: float = DEFAULT_BUILD_TIMEOUT) -> BuildRecord:
    """Build *spec* inside a DetTrace container."""
    cfg = config or ContainerConfig()
    cfg = dataclasses.replace(cfg, timeout=timeout)
    result = DetTrace(cfg).run(
        package_image(spec), TOOLS["driver"],
        argv=["dpkg-buildpackage", spec.name], host=host)
    return BuildRecord(spec=spec, status=_classify(result), result=result)
