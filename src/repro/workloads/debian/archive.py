"""Byte-level archive formats for the synthetic Debian toolchain.

The formats are deliberately simple but *faithful in the ways that
matter*: tar members record mtime/uid/gid/mode in their headers, so a
timestamp difference changes the archive bytes — which is exactly why a
stock Wheezy system produces zero bitwise-reproducible packages until
either strip-nondeterminism clamps the mtimes (the paper's baseline
workaround, §6.1) or DetTrace virtualizes them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

TAR_MAGIC = b"STAR1\n"
DEB_MAGIC = b"SDEB2\n"


@dataclasses.dataclass
class TarEntry:
    """One archive member."""

    name: str
    mode: int
    uid: int
    gid: int
    mtime: float
    content: bytes

    def header(self) -> bytes:
        return b"E %s %o %d %d %.6f %d\n" % (
            self.name.encode(), self.mode, self.uid, self.gid, self.mtime,
            len(self.content))


def tar_pack(entries: List[TarEntry]) -> bytes:
    """Serialize members in the given order (order is part of the bytes!)."""
    out = bytearray(TAR_MAGIC)
    for entry in entries:
        out += entry.header()
        out += entry.content
        out += b"\n"
    out += b"END\n"
    return bytes(out)


def tar_unpack(data: bytes) -> List[TarEntry]:
    if not data.startswith(TAR_MAGIC):
        raise ValueError("not a tar archive")
    pos = len(TAR_MAGIC)
    entries: List[TarEntry] = []
    while True:
        nl = data.index(b"\n", pos)
        line = data[pos:nl]
        pos = nl + 1
        if line == b"END":
            break
        if not line.startswith(b"E "):
            raise ValueError("corrupt tar header %r" % line[:40])
        parts = line.split(b" ")
        name = parts[1].decode()
        mode = int(parts[2], 8)
        uid, gid = int(parts[3]), int(parts[4])
        mtime = float(parts[5])
        size = int(parts[6])
        content = data[pos:pos + size]
        pos += size + 1  # trailing newline
        entries.append(TarEntry(name, mode, uid, gid, mtime, content))
    return entries


def deb_pack(package: str, version: str, control_fields: Dict[str, str],
             data_tar: bytes) -> bytes:
    """An ar(1)-style .deb: control metadata + the data tarball."""
    control = bytearray()
    control += b"Package: %s\n" % package.encode()
    control += b"Version: %s\n" % version.encode()
    for key in sorted(control_fields):
        control += b"%s: %s\n" % (key.encode(), control_fields[key].encode())
    out = bytearray(DEB_MAGIC)
    out += b"C %d\n" % len(control)
    out += control
    out += b"D %d\n" % len(data_tar)
    out += data_tar
    return bytes(out)


def deb_unpack(data: bytes) -> Tuple[Dict[str, str], bytes]:
    """Returns (control fields, data tar bytes)."""
    if not data.startswith(DEB_MAGIC):
        raise ValueError("not a deb archive")
    pos = len(DEB_MAGIC)
    nl = data.index(b"\n", pos)
    clen = int(data[pos + 2:nl])
    pos = nl + 1
    control_raw = data[pos:pos + clen]
    pos += clen
    nl = data.index(b"\n", pos)
    dlen = int(data[pos + 2:nl])
    pos = nl + 1
    data_tar = data[pos:pos + dlen]
    fields: Dict[str, str] = {}
    for line in control_raw.decode().splitlines():
        if ": " in line:
            key, value = line.split(": ", 1)
            fields[key] = value
    return fields, data_tar


def cpio_pack(entries: List[Tuple[str, int, bytes]]) -> bytes:
    """A cpio-style archive: *records inode numbers in headers*.

    Some source packages ship cpio archives, which is how raw inode
    numbers leak into build artifacts (§5.5's motivation for virtual
    inodes).  Entries are (name, inode, content).
    """
    out = bytearray(b"SCPIO\n")
    for name, ino, content in entries:
        out += b"F %s %d %d\n" % (name.encode(), ino, len(content))
        out += content
        out += b"\n"
    out += b"END\n"
    return bytes(out)
