"""Shell-driven package builds: a ``debian/rules`` script as the driver.

Real dpkg-buildpackage executes the package's ``debian/rules`` — a shell
script — which is why the paper needs *arbitrary programs* (not a fixed
toolchain) to be reproducible.  This module builds the same synthetic
packages as :mod:`.builder`, but driven by a generated rules script run
under the guest shell: the script bytes live in the image, the shell
resolves the tools through ``$PATH``, and every step is an ordinary
spawned process.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ...core.config import ContainerConfig
from ...core.container import DetTrace, NativeRunner
from ...core.image import Image
from ...cpu.machine import HostEnvironment
from ...guest.coreutils import install_coreutils
from .builder import (
    BuildRecord,
    DEFAULT_BUILD_TIMEOUT,
    _classify,
    package_image,
)
from .package import PackageSpec


def rules_script(spec: PackageSpec) -> bytes:
    """Generate the package's ``debian/rules``."""
    lines = [
        "# debian/rules for %s (generated)" % spec.name,
        "echo building %s" % spec.name,
        "mkdir obj dist",
        "configure || exit 2",
        "make || exit 2",
        "ld || exit 2",
        "doc-gen",
    ]
    if spec.uses_threads or spec.language == "java" or spec.busy_waits:
        lines.append("jvm || exit 2")
    if spec.uses_sockets:
        lines.append("license-check || exit 2")
    if spec.has_tests:
        lines.append("test-runner || exit 2")
    lines.append("dpkg-deb || exit 2")
    lines.append("echo rules: built %s" % spec.name)
    return ("\n".join(lines) + "\n").encode()


def rules_image(spec: PackageSpec) -> Image:
    """The package image of :func:`.builder.package_image`, plus the
    shell, the toolbox, and the generated rules script."""
    image = package_image(spec)
    install_coreutils(image)

    def setup(kernel, build_dir):
        kernel.fs.write_file(build_dir + "/debian/rules", rules_script(spec),
                             mode=0o755, now=kernel.host.boot_epoch)

    image.on_setup(setup)
    return image


def build_native_rules(spec: PackageSpec,
                       host: Optional[HostEnvironment] = None,
                       timeout: float = 2 * DEFAULT_BUILD_TIMEOUT) -> BuildRecord:
    result = NativeRunner(timeout=timeout).run(
        rules_image(spec), "/bin/sh", argv=["sh", "debian/rules"], host=host)
    return BuildRecord(spec=spec, status=_classify(result), result=result)


def build_dettrace_rules(spec: PackageSpec,
                         config: Optional[ContainerConfig] = None,
                         host: Optional[HostEnvironment] = None,
                         timeout: float = DEFAULT_BUILD_TIMEOUT) -> BuildRecord:
    cfg = dataclasses.replace(config or ContainerConfig(), timeout=timeout)
    result = DetTrace(cfg).run(
        rules_image(spec), "/bin/sh", argv=["sh", "debian/rules"], host=host)
    return BuildRecord(spec=spec, status=_classify(result), result=result)
