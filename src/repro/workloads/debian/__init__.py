"""Synthetic Debian package ecosystem (paper §6, §7.1-7.4)."""

from .archive import TarEntry, cpio_pack, deb_pack, deb_unpack, tar_pack, tar_unpack
from .builder import (
    BUILT,
    DEFAULT_BUILD_TIMEOUT,
    FAILED,
    BuildRecord,
    build_dettrace,
    build_native,
    package_image,
)
from .buildtools import TOOLS
from .package import PackageSpec, source_content
from .repository import CAUSE_WEIGHTS, FAMOUS_PACKAGES, JOINT_COUNTS, generate_population
from .rules import build_dettrace_rules, build_native_rules, rules_image, rules_script
from .selfhost import CLANG_SPEC, SelfHostResult, self_host
from .mirror import Mirror, build_chain, build_with_deps, dependency_image

__all__ = [
    "BUILT",
    "BuildRecord",
    "CAUSE_WEIGHTS",
    "FAMOUS_PACKAGES",
    "CLANG_SPEC",
    "SelfHostResult",
    "self_host",
    "Mirror",
    "build_chain",
    "build_with_deps",
    "dependency_image",
    "DEFAULT_BUILD_TIMEOUT",
    "FAILED",
    "JOINT_COUNTS",
    "PackageSpec",
    "TOOLS",
    "TarEntry",
    "build_dettrace",
    "build_dettrace_rules",
    "build_native",
    "build_native_rules",
    "cpio_pack",
    "deb_pack",
    "deb_unpack",
    "generate_population",
    "package_image",
    "rules_image",
    "rules_script",
    "source_content",
    "tar_pack",
    "tar_unpack",
]
