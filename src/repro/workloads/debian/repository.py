"""Synthetic package population generator.

The generator draws each package's (baseline, DetTrace) outcome category
from the joint distribution of the paper's Table 1, then equips the spec
with the features that *cause* that outcome:

* baseline-irreproducible packages get one or more irreproducibility
  vectors (weighted like the causes DRB catalogued, §7.1.2);
* DetTrace-unsupported packages get busy-waiting (45.8%, the Java case),
  sockets (15.8%), cross-process signals (4%) or a miscellaneous
  unsupported syscall (the long tail) — §7.1.1;
* DetTrace-timeout packages get a syscall storm big enough to blow the
  (scaled) build budget only when tracing overhead multiplies it.

Nothing about the *outcome* is hard-coded: the classification benches
rebuild every package for real and observe what happens.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .package import PackageSpec

#: Table 1 joint counts over the 15,761 baseline-building packages.
JOINT_COUNTS: Dict[Tuple[str, str], int] = {
    ("irreproducible", "reproducible"): 8688,
    ("irreproducible", "unsupported"): 1912,
    ("irreproducible", "timeout"): 1358,
    ("reproducible", "reproducible"): 3442,
    ("reproducible", "unsupported"): 137,
    ("reproducible", "timeout"): 224,
}

#: §7.1.1 unsupported-cause shares.
CAUSE_WEIGHTS = [
    ("busy_waits", 0.458),
    ("uses_sockets", 0.158),
    ("sends_cross_signals", 0.04),
    ("uses_misc_unsupported", 0.344),
]

#: Irreproducibility vectors and their prevalence among BL-irreproducible
#: packages (timestamps and build paths dominate, per DRB's catalogue).
FEATURE_WEIGHTS = [
    ("embeds_timestamp", 0.55),
    ("embeds_build_path", 0.35),
    ("embeds_random_symbols", 0.30),
    ("embeds_fileorder", 0.20),
    ("embeds_locale_date", 0.20),
    ("embeds_tmpnames", 0.15),
    ("embeds_uname", 0.15),
    ("embeds_parallel_order", 0.12),
    ("embeds_cpu_count", 0.10),
    ("embeds_env", 0.10),
    ("embeds_pid", 0.10),
    ("embeds_aslr", 0.08),
    ("embeds_inode", 0.08),
    ("embeds_benchmark", 0.08),
    ("embeds_tree_size", 0.10),
    ("embeds_source_mtime", 0.18),
]

#: Sockets taint artifacts, so socket-using packages are always
#: baseline-irreproducible; the other causes are artifact-neutral.
_BL_NEUTRAL_CAUSES = ("busy_waits", "sends_cross_signals", "uses_misc_unsupported")

#: Syscall-storm size for timeout packages: big enough that tracing
#: overhead pushes the build past DEFAULT_BUILD_TIMEOUT while the (2x
#: budget) baseline still finishes.
TIMEOUT_STORM = 60_000


def _categories(n: int, rng: random.Random) -> List[Tuple[str, str]]:
    total = sum(JOINT_COUNTS.values())
    cats: List[Tuple[str, str]] = []
    for key, count in sorted(JOINT_COUNTS.items()):
        cats.extend([key] * round(n * count / total))
    while len(cats) < n:
        cats.append(("irreproducible", "reproducible"))
    rng.shuffle(cats)
    return cats[:n]


def _pick_cause(rng: random.Random, bl_neutral_only: bool) -> str:
    choices = CAUSE_WEIGHTS
    if bl_neutral_only:
        choices = [(c, w) for c, w in CAUSE_WEIGHTS if c in _BL_NEUTRAL_CAUSES]
    total = sum(w for _, w in choices)
    r = rng.random() * total
    for cause, weight in choices:
        r -= weight
        if r <= 0:
            return cause
    return choices[-1][0]


def _pick_features(rng: random.Random) -> Dict[str, bool]:
    features = {name: rng.random() < weight for name, weight in FEATURE_WEIGHTS}
    robust = PackageSpec.ROBUST_FEATURE_FIELDS
    if not any(features.get(name) for name in robust):
        # Guarantee the package really is baseline-irreproducible: chancy
        # vectors (readdir order, parallel completion order) can coincide
        # across the two builds.
        features["embeds_timestamp"] = True
    return features


def generate_population(n: int, seed: int = 0) -> List[PackageSpec]:
    """Generate *n* packages whose outcome mix mirrors Table 1."""
    rng = random.Random(seed)
    specs: List[PackageSpec] = []
    for index, (bl_cat, dt_cat) in enumerate(_categories(n, rng)):
        kwargs: Dict[str, object] = {}
        language = rng.choices(
            ["c", "cpp", "script", "doc"], weights=[45, 25, 20, 10])[0]
        if bl_cat == "irreproducible":
            kwargs.update(_pick_features(rng))
        if dt_cat == "unsupported":
            cause = _pick_cause(rng, bl_neutral_only=(bl_cat == "reproducible"))
            kwargs[cause] = True
            if cause == "busy_waits":
                language = "java"
            if cause == "uses_sockets" and bl_cat == "reproducible":
                raise AssertionError("socket packages must be BL-irreproducible")
        if dt_cat == "timeout":
            kwargs["syscall_storm"] = TIMEOUT_STORM + rng.randrange(0, 20_000)
        uses_threads = rng.random() < 0.09 and not kwargs.get("busy_waits")
        spec = PackageSpec(
            name="pkg-%s-%03d" % (language, index),
            language=language,
            n_sources=rng.randint(2, 10),
            loc_per_source=rng.randint(100, 600),
            parallel_jobs=rng.choice([1, 1, 2, 2, 4]),
            compute_per_kloc=rng.choice([8e-4, 2e-3, 4e-3, 8e-3, 1.6e-2]),
            include_probes=rng.choice([8, 16, 28, 44, 60]),
            has_tests=rng.random() < 0.3,
            uses_threads=uses_threads,
            exotic_ioctl=rng.random() < 0.57,
            **kwargs)
        specs.append(spec)
    return specs


def expected_statuses(spec: PackageSpec) -> Tuple[str, str]:
    """(baseline, dettrace) category this spec was generated to land in.

    Used only by tests to cross-check that the *measured* classification
    matches the generator's intent.
    """
    bl = "irreproducible" if spec.expect_bl_irreproducible else "reproducible"
    if spec.expect_dt_unsupported:
        dt = "unsupported"
    elif spec.syscall_storm:
        dt = "timeout"
    else:
        dt = "reproducible"
    return bl, dt


#: Named configurations approximating the "large packages" the paper
#: calls out (llvm, clang, blender — §1/§7.2) plus the TeX stack it used
#: to typeset itself.  Sizes are scaled like the rest of the population;
#: the point is the feature mix, not the byte counts.
FAMOUS_PACKAGES = {
    "llvm": PackageSpec(
        name="llvm", version="3.0-1", language="cpp", n_sources=14,
        parallel_jobs=4, loc_per_source=600, has_tests=True,
        embeds_timestamp=True, embeds_build_path=True,
        embeds_random_symbols=True, embeds_tmpnames=True),
    "clang": PackageSpec(
        name="clang", version="3.0-1", language="cpp", n_sources=12,
        parallel_jobs=4, loc_per_source=500, has_tests=True,
        embeds_timestamp=True, embeds_build_path=True,
        embeds_random_symbols=True),
    "blender": PackageSpec(
        name="blender", version="2.63-1", language="cpp", n_sources=16,
        parallel_jobs=4, loc_per_source=500, uses_threads=True,
        embeds_timestamp=True, embeds_fileorder=True,
        embeds_locale_date=True, embeds_cpu_count=True),
    "texlive": PackageSpec(
        name="texlive", version="2012-1", language="doc", n_sources=8,
        parallel_jobs=2, embeds_timestamp=True, embeds_locale_date=True,
        embeds_source_mtime=True),
}
