"""Build-dependency chains against an on-disk mirror (paper §6.1).

The paper's methodology installs each package's build-dependencies with
``apt-get build-dep`` *"referencing an on-disk mirror to avoid network
requests and ensure consistency across builds"*.  This module supplies
that substrate:

* a :class:`Mirror` of built ``.deb`` artifacts, installed into the image
  at ``/var/mirror``;
* an ``apt-get`` guest tool that reads the package's ``Build-Depends``
  and unpacks each dependency into ``/usr/installed/<name>``;
* compiler integration: objects link against installed dependencies, so
  a dependency's *bytes* feed every downstream artifact — which is why
  irreproducibility cascades through a distribution (§2's motivation)
  and why a reproducible chain enables artifact caching.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, Iterable, List, Optional

from ...core.container import ContainerResult
from ...cpu.machine import HostEnvironment
from ...guest.program import with_args
from .archive import deb_unpack, tar_unpack
from .builder import BuildRecord, build_dettrace, build_native, package_image
from .package import PackageSpec

MIRROR_DIR = "/var/mirror"
INSTALL_DIR = "/usr/installed"
APT_PATH = "/usr/bin/apt-get"


@dataclasses.dataclass
class Mirror:
    """Built artifacts available to dependent builds."""

    debs: Dict[str, bytes] = dataclasses.field(default_factory=dict)

    def add(self, name: str, deb: bytes) -> None:
        self.debs[name] = deb

    def install_into(self, image) -> None:
        for name, deb in sorted(self.debs.items()):
            image.add_file("%s/%s.deb" % (MIRROR_DIR, name), deb)


def apt_get_main(sys, spec: PackageSpec):
    """``apt-get build-dep``: unpack each dependency from the mirror."""
    if len(sys.argv) < 2 or sys.argv[1] != "build-dep":
        yield from sys.eprintln("apt-get: only build-dep is supported")
        return 2
    for dep in spec.build_depends:
        deb_path = "%s/%s.deb" % (MIRROR_DIR, dep)
        if not (yield from sys.access(deb_path)):
            yield from sys.eprintln(
                "apt-get: dependency %s not in the mirror" % dep)
            return 1
        deb = yield from sys.read_file(deb_path)
        fields, data_tar = deb_unpack(deb)
        prefix = "%s/%s" % (INSTALL_DIR, dep)
        yield from sys.mkdir_p(prefix)
        for entry in tar_unpack(data_tar):
            target = prefix + "/" + entry.name
            yield from sys.mkdir_p("/".join(target.split("/")[:-1]))
            yield from sys.write_file(target, entry.content,
                                      mode=entry.mode or 0o644)
        yield from sys.println("apt-get: installed %s (%s)"
                               % (dep, fields.get("Version", "?")))
    return 0


def dependency_image(spec: PackageSpec, mirror: Optional[Mirror] = None):
    """A package image with apt-get, the mirror, and a driver that runs
    ``apt-get build-dep`` before the ordinary build."""
    image = package_image(spec)
    image.add_binary(APT_PATH, with_args(apt_get_main, spec))
    if mirror is not None:
        mirror.install_into(image)

    # The driver wrapper: install deps, then exec the stock driver.
    from .buildtools import TOOLS, dpkg_buildpackage_main

    def driver(sys):
        if spec.build_depends:
            res = yield from sys.run(APT_PATH, argv=["apt-get", "build-dep",
                                                     spec.name])
            if res.exit_code != 0:
                yield from sys.eprintln("dpkg-buildpackage: build-dep failed")
                return 3
        return (yield from dpkg_buildpackage_main(sys, spec))

    image.add_binary(TOOLS["driver"], driver)
    return image


def build_with_deps(spec: PackageSpec, mirror: Mirror, dettrace: bool,
                    host: Optional[HostEnvironment] = None,
                    config=None) -> BuildRecord:
    """Build one package against *mirror*."""
    from .buildtools import TOOLS
    from .builder import DEFAULT_BUILD_TIMEOUT, _classify
    from ...core.container import DetTrace, NativeRunner
    from ...core.config import ContainerConfig

    image = dependency_image(spec, mirror)
    argv = ["dpkg-buildpackage", spec.name]
    if dettrace:
        cfg = dataclasses.replace(config or ContainerConfig(),
                                  timeout=2 * DEFAULT_BUILD_TIMEOUT)
        result = DetTrace(cfg).run(image, TOOLS["driver"], argv=argv, host=host)
    else:
        result = NativeRunner(timeout=4 * DEFAULT_BUILD_TIMEOUT).run(
            image, TOOLS["driver"], argv=argv, host=host)
    return BuildRecord(spec=spec, status=_classify(result), result=result)


def build_chain(specs: Iterable[PackageSpec], dettrace: bool,
                host_for: Callable[[int], HostEnvironment]) -> Dict[str, bytes]:
    """Build *specs* in order, feeding each build's .deb to the mirror.

    Returns {package name: deb bytes}.  Raises if any build fails.
    """
    mirror = Mirror()
    out: Dict[str, bytes] = {}
    for index, spec in enumerate(specs):
        record = build_with_deps(spec, mirror, dettrace,
                                 host=host_for(index))
        if record.status != "built":
            raise RuntimeError("chain build of %s failed: %s (%s)"
                               % (spec.name, record.status,
                                  record.result.error))
        deb = record.deb
        mirror.add(spec.name, deb)
        out[spec.name] = deb
    return out
