"""Self-hosting builds: the §7.2 LLVM experiment.

The paper validates functional correctness by building LLVM *with a
clang that was itself built under DetTrace*, then running the LLVM test
suite and getting the same outcomes as the baseline (5,594 pass / 48
expected-fail / 15 unsupported).

The analog here: stage 1 builds the ``clang`` package with the stock
toolchain; stage 2 rebuilds it *using the stage-1 compiler* — a guest
compiler whose code generation mixes in a digest of the stage-1 artifact
bytes, so any difference in the stage-1 build propagates into every
stage-2 object (the classic bootstrap-comparison property).  A final
test-suite run reports pass/xfail/unsupported counts derived from the
built artifact's structure.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, Optional

from ...core.config import ContainerConfig
from ...core.container import ContainerResult, DetTrace, NativeRunner
from ...core.image import Image
from ...cpu.machine import HostEnvironment
from ...guest.program import with_args
from .builder import DEFAULT_BUILD_TIMEOUT, TOOLS, _FACTORIES, package_image
from .buildtools import gcc_main
from .package import PackageSpec

#: The compiler package both stages build (an llvm/clang-scale analog).
CLANG_SPEC = PackageSpec(
    name="clang",
    version="3.0-1",
    language="cpp",
    n_sources=10,
    parallel_jobs=4,
    has_tests=True,
    embeds_timestamp=True,
    embeds_random_symbols=True,
    embeds_build_path=True,
)

#: Where stage 2's image records the identity of its compiler.
COMPILER_ID_PATH = "/usr/lib/clang.id"

#: The paper's LLVM test-suite outcome (scaled in the analog).
PAPER_LLVM_OUTCOMES = {"pass": 5594, "xfail": 48, "unsupported": 15}


def stage1_compiler_main(sys, spec: PackageSpec):
    """Stage 2's ``gcc``: the stage-1-built clang.

    Identical to the stock compiler except that its code generation mixes
    in its own binary identity (read from :data:`COMPILER_ID_PATH`), the
    way a bootstrapped compiler's output depends on the compiler bits.
    """
    compiler_id = yield from sys.read_file(COMPILER_ID_PATH)
    result = yield from gcc_main(sys, spec)
    if result == 0 and len(sys.argv) > 2:   # not for `gcc --version`
        out = sys.argv[2]
        obj = yield from sys.read_file(out)
        stamp = hashlib.sha256(compiler_id + obj).hexdigest()[:16]
        yield from sys.write_file(out, obj + b"CCID %s\n" % stamp.encode())
    return result


@dataclasses.dataclass
class SelfHostResult:
    """Both stages plus the final test-suite outcome."""

    stage1: ContainerResult
    stage2: ContainerResult
    test_outcomes: str

    @property
    def stage2_deb(self) -> Optional[bytes]:
        for path in sorted(self.stage2.output_tree):
            if path.endswith(".deb"):
                return self.stage2.output_tree[path]
        return None

    @property
    def succeeded(self) -> bool:
        return self.stage1.succeeded and self.stage2.succeeded


def _stage2_image(stage1_deb: bytes) -> Image:
    image = package_image(CLANG_SPEC)
    # Replace the stock compiler with the stage-1 clang...
    image.add_binary(TOOLS["gcc"], with_args(stage1_compiler_main, CLANG_SPEC))
    # ...whose identity is the stage-1 artifact digest.
    image.add_file(COMPILER_ID_PATH,
                   hashlib.sha256(stage1_deb).hexdigest().encode())
    return image


def _run(image: Image, runner) -> ContainerResult:
    return runner(image)


def self_host(dettrace: bool = True,
              host: Optional[HostEnvironment] = None,
              config: Optional[ContainerConfig] = None) -> SelfHostResult:
    """Run the two-stage bootstrap; *dettrace* picks the build mode."""
    host = host or HostEnvironment()
    argv = ["dpkg-buildpackage", CLANG_SPEC.name]

    def run(image: Image) -> ContainerResult:
        if dettrace:
            cfg = dataclasses.replace(config or ContainerConfig(),
                                      timeout=4 * DEFAULT_BUILD_TIMEOUT)
            return DetTrace(cfg).run(image, TOOLS["driver"], argv=argv,
                                     host=host)
        return NativeRunner(timeout=8 * DEFAULT_BUILD_TIMEOUT).run(
            image, TOOLS["driver"], argv=argv, host=host)

    stage1 = run(package_image(CLANG_SPEC))
    if not stage1.succeeded:
        return SelfHostResult(stage1, stage1, "stage1 failed")
    deb1 = next(stage1.output_tree[p] for p in sorted(stage1.output_tree)
                if p.endswith(".deb"))
    stage2 = run(_stage2_image(deb1))
    outcomes = _test_outcomes(stage2)
    return SelfHostResult(stage1, stage2, outcomes)


def _test_outcomes(result: ContainerResult) -> str:
    """The `make check` line (the driver's test-runner prints it)."""
    for line in result.stdout.splitlines():
        if line.startswith("tests:"):
            return line
    return "tests: none"
