"""Synthetic Debian package specifications.

A :class:`PackageSpec` describes one package's build: its size and
parallelism, which irreproducibility vectors its build exercises, and
which DetTrace-unsupported operations (if any) it performs.  The flags
map one-to-one onto the causes the paper catalogues (§6.1, §7.1.1,
§7.1.2): timestamps, build paths, randomness, file ordering, host
identity, PIDs, ASLR, inodes, locales, environment capture — and busy
waiting, sockets, cross-process signals and the miscellaneous-syscall
tail for unsupported builds.
"""

from __future__ import annotations

import dataclasses
from typing import List


@dataclasses.dataclass(frozen=True)
class PackageSpec:
    """One synthetic package."""

    name: str
    version: str = "1.0-1"
    language: str = "c"  # c | cpp | java | script | doc
    n_sources: int = 4
    loc_per_source: int = 200
    parallel_jobs: int = 2
    #: Compute work (reference-seconds) per 1000 lines compiled.
    compute_per_kloc: float = 6e-3
    #: Include-path probes gcc performs per source file (syscall volume).
    include_probes: int = 8
    has_tests: bool = False
    uses_threads: bool = False
    #: Other packages whose built .debs must be installed (apt-get
    #: build-dep from the on-disk mirror, §6.1) before this build.
    build_depends: tuple = ()

    # -- irreproducibility vectors (each makes the baseline build vary) ----
    embeds_timestamp: bool = False      # __DATE__ / Build-Date
    embeds_build_path: bool = False     # __FILE__ absolute paths
    embeds_random_symbols: bool = False  # gcc -frandom-seed from /dev/urandom
    embeds_tmpnames: bool = False       # rdtsc-derived temp names in debug info
    embeds_fileorder: bool = False      # links objects in readdir order
    embeds_parallel_order: bool = False  # parallel compilers append to an index
    embeds_uname: bool = False          # configure caches host/kernel
    embeds_pid: bool = False            # PID baked into a generated header
    embeds_aslr: bool = False           # &main printed into an artifact
    embeds_inode: bool = False          # ships a cpio archive (raw inodes)
    embeds_locale_date: bool = False    # doc page with TZ/locale date
    embeds_env: bool = False            # captures $PATH
    embeds_cpu_count: bool = False      # configure caches nproc
    embeds_benchmark: bool = False      # stores a timing microbenchmark
    #: configure caches the source-tree byte count, which includes the
    #: *directory* size stat reports — identical across runs on one
    #: machine but filesystem/machine-dependent (the §7.3 portability
    #: hazard that forced DetTrace's deterministic directory sizes).
    embeds_tree_size: bool = False
    #: Python-style bytecode caches embed the *source file's mtime* in
    #: the compiled artifact header (CPython's real .pyc behaviour — a
    #: classic Debian irreproducibility vector).
    embeds_source_mtime: bool = False

    # -- failure triggers ------------------------------------------------------
    busy_waits: bool = False            # JVM-style spin (DT: unsupported)
    uses_sockets: bool = False          # license check (DT: unsupported)
    sends_cross_signals: bool = False   # kills a watchdog (DT: unsupported)
    uses_misc_unsupported: bool = False  # perf_event_open profiling
    exotic_ioctl: bool = False          # crashes the rr baseline
    #: Extra tiny writes: syscall-storm packages exceed the DetTrace
    #: build budget (the paper's Timeout category).
    syscall_storm: int = 0

    FEATURE_FIELDS = (
        "embeds_timestamp", "embeds_build_path", "embeds_random_symbols",
        "embeds_tmpnames", "embeds_fileorder", "embeds_parallel_order",
        "embeds_uname", "embeds_pid", "embeds_aslr", "embeds_inode",
        "embeds_locale_date", "embeds_env", "embeds_cpu_count",
        "embeds_benchmark", "embeds_tree_size",
    )

    #: Features guaranteed to differ under the reprotest variation set
    #: (same-machine double builds).  The others are *chancy*: readdir
    #: hash order or parallel completion order can coincide, and uname is
    #: not varied by reprotest at all (the paper turns host/kernel
    #: variations off, §6.1).
    ROBUST_FEATURE_FIELDS = (
        "embeds_timestamp", "embeds_build_path", "embeds_random_symbols",
        "embeds_tmpnames", "embeds_pid", "embeds_aslr", "embeds_inode",
        "embeds_locale_date", "embeds_env", "embeds_cpu_count",
        "embeds_source_mtime",
    )

    UNSUPPORTED_FIELDS = (
        "busy_waits", "uses_sockets", "sends_cross_signals",
        "uses_misc_unsupported",
    )

    @property
    def irreproducibility_features(self) -> List[str]:
        return [f for f in self.FEATURE_FIELDS if getattr(self, f)]

    @property
    def unsupported_causes(self) -> List[str]:
        return [f for f in self.UNSUPPORTED_FIELDS if getattr(self, f)]

    @property
    def expect_bl_irreproducible(self) -> bool:
        """Is the baseline double-build *guaranteed* to differ (after the
        tar-mtime workaround)?  Sockets also taint artifacts with network
        answers."""
        return (any(getattr(self, f) for f in self.ROBUST_FEATURE_FIELDS)
                or self.uses_sockets)

    @property
    def expect_dt_unsupported(self) -> bool:
        return bool(self.unsupported_causes)

    def source_path(self, index: int) -> str:
        ext = {"c": "c", "cpp": "cc", "java": "java", "script": "sh",
               "doc": "txt"}.get(self.language, "c")
        return "src/%s_%d.%s" % (self.name.replace("-", "_"), index, ext)


def source_content(spec: PackageSpec, index: int) -> bytes:
    """Deterministic source text: part of the package's *input*."""
    import hashlib

    lines = [b"/* %s source %d */" % (spec.name.encode(), index)]
    seed = hashlib.sha256(b"%s:%d" % (spec.name.encode(), index)).hexdigest()
    for i in range(max(4, spec.loc_per_source // 16)):
        lines.append(b"int fn_%d_%d(void) { return 0x%s; }"
                     % (index, i, seed[:8].encode()))
    return b"\n".join(lines) + b"\n"
