"""repro: a reproduction of *Reproducible Containers* (ASPLOS 2020).

DetTrace — a reproducible container abstraction — implemented over a
simulated Linux kernel and x86-64 CPU so the paper's entire evaluation
can run on a laptop.  Quickstart::

    from repro import DetTrace, NativeRunner, Image

    def main(sys):
        t = yield from sys.time()              # wall clock: irreproducible
        r = yield from sys.urandom(4)          # entropy: irreproducible
        yield from sys.write_file("out", "%d %s" % (t, r.hex()))
        return 0

    image = Image()
    image.add_binary("/bin/main", main)
    print(NativeRunner().run(image, "/bin/main").output_tree)  # varies
    print(DetTrace().run(image, "/bin/main").output_tree)      # pure function

Package layout:

* :mod:`repro.kernel` — the simulated Linux substrate (unmodified box);
* :mod:`repro.cpu` — machine specs and irreproducible instructions;
* :mod:`repro.guest` — the guest program model and runtime;
* :mod:`repro.tracer` — ptrace/seccomp analogs;
* :mod:`repro.core` — **DetTrace itself** (the paper's contribution);
* :mod:`repro.obs` — deterministic observability: metrics, virtual-time
  traces, phase profiling;
* :mod:`repro.faults` — deterministic fault plans and crash reports;
* :mod:`repro.rnr` — the record-and-replay baseline (rr analog);
* :mod:`repro.workloads` — Debian builds, bioinformatics, TensorFlow;
* :mod:`repro.repro_tools` — reprotest/diffoscope/strip-nondeterminism;
* :mod:`repro.analysis` — table/figure rendering for the evaluation.
"""

from .core import (
    ContainerConfig,
    ContainerResult,
    DetTrace,
    Image,
    NativeRunner,
    ablated,
    full_config,
)
from .cpu import HostEnvironment, MachineSpec
from .kernel import Kernel

__version__ = "1.0.0"

__all__ = [
    "ContainerConfig",
    "ContainerResult",
    "DetTrace",
    "HostEnvironment",
    "Image",
    "Kernel",
    "MachineSpec",
    "NativeRunner",
    "__version__",
    "ablated",
    "full_config",
]
