"""Processes and threads of the simulated kernel."""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, Generator, List, Optional

from .fds import FDTable
from .inode import Inode
from .waiting import Channel


class ThreadState(enum.Enum):
    #: Waiting for a core (or for a sibling's serialization token).
    RUNNABLE = "runnable"
    #: Occupying a core in a compute segment.
    RUNNING = "running"
    #: Parked on wait channels inside a blocking syscall (native path).
    BLOCKED = "blocked"
    #: Stopped by ptrace, waiting for the tracer.
    TRACE_STOP = "trace_stop"
    #: Between operations; the DES is about to dispatch the next op.
    DISPATCH = "dispatch"
    EXITED = "exited"


class Thread:
    """One schedulable unit.  Runs a stack of guest generators.

    The stack exists so that signal handlers can be pushed on top of the
    interrupted computation and run to completion before the main body
    resumes — the simulated version of a signal frame.
    """

    def __init__(self, tid: int, process: "Process",
                 gen: Generator[Any, Any, Any]):
        self.tid = tid
        self.process = process
        self.gen_stack: List[Generator[Any, Any, Any]] = [gen]
        self.state = ThreadState.DISPATCH
        #: What to send into the generator on next resume.
        self.pending_value: Any = None
        self.pending_exception: Optional[BaseException] = None
        #: Channels this thread is parked on (BLOCKED state).
        self.wait_channels: List[Channel] = []
        #: The in-flight syscall (set during syscall handling / trace stop).
        self.current_syscall = None
        #: Accumulated CPU seconds.
        self.cpu_time = 0.0
        #: CPU seconds burned since the last syscall — busy-wait detector.
        self.compute_since_syscall = 0.0
        #: Signal handler generators queued for delivery.
        self.pending_signals: List[int] = []
        #: Deterministic logical clock: advanced by *requested* work (not
        #: jittered wall time), so trace stops carry timestamps that are a
        #: pure function of guest behaviour.  Used by the reproducible
        #: scheduler (core.scheduler.LogicalClockScheduler).
        self.det_clock = 0.0
        #: Lower bound on det_clock at this thread's next trace stop
        #: (clock plus compute already committed to).
        self.det_bound = 0.0
        #: Wall-clock wakeup latency owed after tracer resumes: consumed
        #: by the next compute segment.  Wall-only — never part of the
        #: deterministic clock.
        self.pending_latency = 0.0
        #: Waiting for the sibling-serialization token (§5.7).  Such a
        #: thread's progress is driven by deterministic token grants, so
        #: it must not gate the reproducible scheduler's eligibility.
        self.token_queued = False
        #: Fault decision armed for the in-flight syscall instance
        #: (repro.faults): set at dispatch, consumed at first execution.
        self.armed_fault = None
        #: Observability coordinates of the in-flight syscall instance
        #: (repro.obs): the per-process index assigned at dispatch, the
        #: number of tracer service/probe attempts so far, and whether a
        #: fault was injected into this instance.
        self.current_syscall_index = -1
        self.obs_attempt = 0
        self.obs_faulted = False

    @property
    def is_main(self) -> bool:
        return self.process.threads and self.process.threads[0] is self

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.EXITED

    def __repr__(self) -> str:
        return "Thread(tid=%d, pid=%d, %s)" % (self.tid, self.process.pid, self.state.value)


SignalAction = Any  # 'default' | 'ignore' | Callable[[Any], Generator]


class Process:
    """A simulated Linux process."""

    def __init__(self, pid: int, nspid: int, parent: Optional["Process"],
                 root: Inode, cwd: Inode, cwd_path: str,
                 env: Dict[str, str], argv: List[str],
                 uid: int = 0, gid: int = 0, aslr_base: int = 0):
        self.pid = pid            # host pid
        self.nspid = nspid        # pid inside the container namespace
        self.parent = parent
        self.children: List["Process"] = []
        self.root = root          # chroot
        self.cwd = cwd
        self.cwd_path = cwd_path
        self.env = dict(env)
        self.argv = list(argv)
        self.uid = uid
        self.gid = gid
        #: File-mode creation mask, applied at every creation choke point
        #: (open(O_CREAT)/mkdir/mkfifo — symlinks exempt, per POSIX).
        #: Inherited across fork/exec; the Linux default for init.
        self.umask = 0o022
        self.aslr_base = aslr_base
        self.fdtable = FDTable()
        self.threads: List[Thread] = []
        self.exit_status: Optional[int] = None
        self.reaped = False
        #: Fires when the process exits (parents wait4 on it).
        self.exit_channel = Channel("pid%d.exit" % pid)
        #: Fires when a signal is delivered (pause/sleep wake on it).
        self.signal_channel = Channel("pid%d.signal" % pid)
        self.signal_handlers: Dict[int, SignalAction] = {}
        #: Whether DetTrace replaced this process's vDSO (reset by execve).
        self.vdso_patched = False
        #: Executable path (for /proc-style introspection and execve).
        self.exe_path = argv[0] if argv else ""
        #: Futex wait-channel registry, shared across threads (and with
        #: fork children it is NOT shared — futexes live in memory; we key
        #: per-process which is sufficient for our thread workloads).
        self.futex_channels: Dict[int, Channel] = {}
        #: Arbitrary per-process scratch shared between guest threads
        #: (models the shared address space).
        self.memory: Dict[str, Any] = {}
        #: Count of syscalls this process has dispatched — the
        #: deterministic per-process coordinate fault plans key on.
        self.syscall_index = 0

    @property
    def alive(self) -> bool:
        return self.exit_status is None

    @property
    def main_thread(self) -> Thread:
        return self.threads[0]

    def live_threads(self) -> List[Thread]:
        return [t for t in self.threads if t.alive]

    def futex_channel(self, addr: int) -> Channel:
        if addr not in self.futex_channels:
            self.futex_channels[addr] = Channel("pid%d.futex.%s" % (self.pid, addr))
        return self.futex_channels[addr]

    def getenv(self, name: str, default: str = "") -> str:
        return self.env.get(name, default)

    def __repr__(self) -> str:
        return "Process(pid=%d, nspid=%d, argv=%r)" % (self.pid, self.nspid, self.argv[:1])


@dataclasses.dataclass
class ExitedChild:
    """A zombie waiting to be reaped by wait4."""

    process: "Process"
    status: int
