"""The simulated VFS: path resolution, namei operations, chroot.

Irreproducibility sources modelled here (paper §5.5):

* **inode numbers** — allocated from a per-boot offset, recycled on
  unlink, so they differ across runs and machines;
* **directory entry order** — ``getdents`` returns entries in a
  salted-hash order (the "filesystem implementation" order), which
  differs per boot;
* **timestamps** — every namei operation stamps real wall-clock times;
* **directory sizes** — reported via the machine-specific model
  (:meth:`repro.cpu.machine.MachineSpec.directory_size`), which is the
  §7.3 portability hazard;
* **disk exhaustion** — optional ENOSPC injection for quasi-determinism
  experiments.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..cpu.machine import HostEnvironment
from .epoch import MutationClock
from .errors import Errno, SyscallError
from .inode import Inode, InodeAllocator, new_directory, new_file
from .types import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, Dirent, FileKind, StatResult

MAX_SYMLINK_DEPTH = 8


def split_path(path: str) -> List[str]:
    """Split a path into components, dropping empty ones and ``.``."""
    return [c for c in path.split("/") if c and c != "."]


def normalize(path: str) -> str:
    """Normalize an absolute path string (resolve ``.`` and ``..`` lexically)."""
    parts: List[str] = []
    for comp in split_path(path):
        if comp == "..":
            if parts:
                parts.pop()
        else:
            parts.append(comp)
    return "/" + "/".join(parts)


class Filesystem:
    """A single-mount in-memory filesystem tree."""

    def __init__(self, host: HostEnvironment):
        self.host = host
        self._alloc = InodeAllocator(host.inode_start)
        #: Dirty tracking for incremental checkpoints (repro.ckpt):
        #: every mutation stamps the touched inode with the mutation
        #: clock and registers it here, keyed by ``(ino, generation)``.
        #: Purely observational — nothing below ever reads these.
        self._mclock = MutationClock()
        self._dirty: Dict[Tuple[int, int], Inode] = {}
        self._dead: List[Tuple[int, int]] = []
        #: Live FIFO inodes by pipe identity, so the snapshot layer can
        #: find FIFO-backing pipes without walking the whole tree.
        self._fifo_nodes: Dict[int, Inode] = {}
        self.root = new_directory(self._alloc.allocate(), now=host.boot_epoch)
        self.register_new_inode(self.root)
        self.device_id = 0x801
        self._bytes_written = 0
        #: Deterministic fault plane consult point (repro.faults):
        #: disk_full rules cap cumulative bytes written.
        self.fault_injector = None
        #: Hot-path caches (dentry/namei + getdents order).  Both are
        #: pure memoization over the directory structure — resolution
        #: never consults modes or timestamps, and the salted-hash order
        #: depends only on the entry names — so enabling them cannot
        #: change any result (``ContainerConfig.fs_caches`` toggles them
        #: for the identity tests).
        self.cache_enabled = True
        self._namei_cache: Dict[Tuple[int, int, str, bool], Inode] = {}
        self._namei_epoch_seen = Inode.namei_epoch
        self.resolve_hits = 0
        self.resolve_misses = 0
        self.dirent_hits = 0
        self.dirent_misses = 0

    # -- allocation ---------------------------------------------------------

    def _new_ino(self) -> int:
        return self._alloc.allocate()

    # -- dirty tracking (incremental checkpoints) ---------------------------
    #
    # The snapshot layer names every inode ``(ino, generation)`` — stable
    # across number recycling — and only re-serializes the dirty set at a
    # barrier.  ``note`` is called by every mutator below and by the
    # syscall layer for direct inode mutations (truncate, chmod, atime).

    def key_of(self, node: Inode) -> Tuple[int, int]:
        """The ``(ino, generation)`` identity of *node*."""
        return (node.ino, node.generation)

    def register_new_inode(self, node: Inode) -> None:
        """Stamp a freshly-allocated inode's generation and mark it dirty.

        Every creation site must route here (or through the create_*
        helpers, which do) so the ``(ino, generation)`` key is live
        before the object can appear in a snapshot.
        """
        node.generation = self._alloc.generation_of(node.ino)
        if node.kind is FileKind.FIFO and node.fifo_pipe is not None:
            self._fifo_nodes[id(node.fifo_pipe)] = node
        self.note(node)

    def note(self, node: Inode) -> None:
        """Stamp *node* as mutated in the current epoch."""
        node.dirty_epoch = self._mclock.tick
        self._dirty[(node.ino, node.generation)] = node

    def dirty_nodes(self) -> Dict[Tuple[int, int], Inode]:
        """Inodes mutated since the last ``clear_dirty()``."""
        return self._dirty

    def dead_keys(self) -> List[Tuple[int, int]]:
        """Keys of inodes fully released since the last ``clear_dirty()``."""
        return self._dead

    def fifo_inodes(self) -> List[Inode]:
        """All live FIFO inodes (for pipe discovery at capture)."""
        return list(self._fifo_nodes.values())

    def clear_dirty(self) -> None:
        """Fence the epoch after a successful snapshot."""
        self._dirty = {}
        self._dead = []
        self._mclock.advance()

    def reset_dirty_state(self, nodes: Iterable[Inode]) -> None:
        """Re-arm dirty tracking after a restore rebuilds the tree.

        The restored run's first snapshot is always a full capture, so
        the dirty set starts empty; only the FIFO registry (pipe
        discovery for capture) needs rebuilding from *nodes*.
        """
        self._mclock = MutationClock()
        self._dirty = {}
        self._dead = []
        self._fifo_nodes = {}
        for node in nodes:
            if node.kind is FileKind.FIFO and node.fifo_pipe is not None:
                self._fifo_nodes[id(node.fifo_pipe)] = node

    def charge_disk(self, nbytes: int) -> None:
        """Account *nbytes* of new data; raise ENOSPC past the injection cap."""
        self._bytes_written += max(0, nbytes)
        if self.fault_injector is not None:
            self.fault_injector.disk_charge(self._bytes_written)
        cap = self.host.disk_free_bytes
        if cap is not None and self._bytes_written > cap:
            raise SyscallError(Errno.ENOSPC, "write")

    # -- path resolution ------------------------------------------------------

    def resolve(self, root: Inode, cwd: Inode, path: str, follow_last: bool = True,
                _depth: int = 0) -> Inode:
        """Resolve *path* to an inode, honouring chroot *root* and *cwd*.

        Raises :class:`SyscallError` with ENOENT/ENOTDIR/ELOOP on failure.

        Successful resolutions are memoized in a dentry cache keyed on
        (root, cwd, path, follow_last) identities.  The whole cache is
        dropped whenever the global removal epoch moves (any entry
        removed anywhere — unlink, rmdir, rename): removals are rare
        next to lookups, additions can never invalidate a cached
        *positive* resolution (failures are never cached, so new entries
        only ever turn misses into hits), and a global epoch makes
        id-reuse safe — an inode can only die via an epoch-bumping
        removal, so no stale id ever survives in the cache.
        Symlink-chase recursion bypasses the cache so ELOOP accounting
        is untouched.
        """
        if self.cache_enabled and _depth == 0:
            epoch = Inode.namei_epoch
            if epoch != self._namei_epoch_seen:
                self._namei_cache.clear()
                self._namei_epoch_seen = epoch
            key = (id(root), id(cwd), path, follow_last)
            node = self._namei_cache.get(key)
            if node is not None:
                self.resolve_hits += 1
                return node
            self.resolve_misses += 1
            node = self._resolve_walk(root, cwd, path, follow_last, 0)
            self._namei_cache[key] = node
            return node
        return self._resolve_walk(root, cwd, path, follow_last, _depth)

    def _resolve_walk(self, root: Inode, cwd: Inode, path: str,
                      follow_last: bool, _depth: int) -> Inode:
        if _depth > MAX_SYMLINK_DEPTH:
            raise SyscallError(Errno.ELOOP, "resolve", path)
        node = root if path.startswith("/") else cwd
        comps = split_path(path)
        for i, comp in enumerate(comps):
            if not node.is_dir:
                raise SyscallError(Errno.ENOTDIR, "resolve", path)
            if comp == "..":
                node = self._parent_of(root, node) or node
                continue
            child = node.lookup(comp)
            if child is None:
                raise SyscallError(Errno.ENOENT, "resolve", path)
            is_last = i == len(comps) - 1
            if child.kind is FileKind.SYMLINK and (follow_last or not is_last):
                target = child.symlink_target
                rest = "/".join(comps[i + 1:])
                newpath = target + ("/" + rest if rest else "")
                base = node if not target.startswith("/") else root
                return self.resolve(root, base, newpath, follow_last, _depth + 1)
            node = child
        return node

    def _parent_of(self, root: Inode, node: Inode) -> Optional[Inode]:
        """Find *node*'s parent by walking from *root* (small trees only)."""
        if node is root:
            return root
        stack = [root]
        while stack:
            cur = stack.pop()
            if not cur.is_dir:
                continue
            for child in cur.entries.values():
                if child is node:
                    return cur
                if child.is_dir:
                    stack.append(child)
        return None

    def resolve_parent(self, root: Inode, cwd: Inode, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of *path*; return (parent, basename)."""
        comps = split_path(path)
        if not comps:
            raise SyscallError(Errno.EINVAL, "resolve_parent", path)
        name = comps[-1]
        parent_path = "/".join(comps[:-1])
        if path.startswith("/"):
            parent_path = "/" + parent_path
        parent = self.resolve(root, cwd, parent_path) if parent_path else cwd
        if not parent.is_dir:
            raise SyscallError(Errno.ENOTDIR, "resolve_parent", path)
        return parent, name

    # -- namei operations ---------------------------------------------------

    def create_file(self, parent: Inode, name: str, mode: int = DEFAULT_FILE_MODE,
                    uid: int = 0, gid: int = 0, now: float = 0.0,
                    data: bytes = b"") -> Inode:
        if parent.lookup(name) is not None:
            raise SyscallError(Errno.EEXIST, "create", name)
        node = new_file(self._new_ino(), mode=mode, uid=uid, gid=gid, now=now, data=data)
        self.charge_disk(len(data))
        parent.add_entry(name, node)
        parent.mtime = parent.ctime = now
        self.register_new_inode(node)
        self.note(parent)
        return node

    def create_dir(self, parent: Inode, name: str, mode: int = DEFAULT_DIR_MODE,
                   uid: int = 0, gid: int = 0, now: float = 0.0) -> Inode:
        if parent.lookup(name) is not None:
            raise SyscallError(Errno.EEXIST, "mkdir", name)
        node = new_directory(self._new_ino(), mode=mode, uid=uid, gid=gid, now=now)
        parent.add_entry(name, node)
        parent.nlink += 1
        parent.mtime = parent.ctime = now
        self.register_new_inode(node)
        self.note(parent)
        return node

    def create_symlink(self, parent: Inode, name: str, target: str, uid: int = 0,
                       gid: int = 0, now: float = 0.0) -> Inode:
        if parent.lookup(name) is not None:
            raise SyscallError(Errno.EEXIST, "symlink", name)
        node = Inode(ino=self._new_ino(), kind=FileKind.SYMLINK, mode=0o777, uid=uid,
                     gid=gid, atime=now, mtime=now, ctime=now, symlink_target=target)
        parent.add_entry(name, node)
        parent.mtime = parent.ctime = now
        self.register_new_inode(node)
        self.note(parent)
        return node

    def create_device(self, parent: Inode, name: str, dev_read=None, dev_write=None,
                      mode: int = 0o666, now: float = 0.0) -> Inode:
        node = Inode(ino=self._new_ino(), kind=FileKind.CHARDEV, mode=mode,
                     atime=now, mtime=now, ctime=now, dev_read=dev_read,
                     dev_write=dev_write)
        parent.add_entry(name, node)
        self.register_new_inode(node)
        self.note(parent)
        return node

    def hard_link(self, parent: Inode, name: str, target: Inode, now: float = 0.0) -> None:
        if parent.lookup(name) is not None:
            raise SyscallError(Errno.EEXIST, "link", name)
        if target.is_dir:
            raise SyscallError(Errno.EPERM, "link", name)
        parent.add_entry(name, target)
        target.nlink += 1
        target.ctime = now
        parent.mtime = parent.ctime = now
        self.note(target)
        self.note(parent)

    # -- open-description accounting ----------------------------------------
    #
    # POSIX keeps an unlinked-but-open inode alive until its last close;
    # releasing the inode *number* early lets the allocator hand the same
    # st_ino to a new file while the orphan is still fstat-able — two live
    # objects sharing an identity.  The syscall layer reports opens and
    # closes here so unlink/rmdir/rename defer the release.

    def inode_opened(self, node: Inode) -> None:
        """An open file description now references *node*."""
        node.open_count += 1
        self.note(node)

    def inode_closed(self, node: Inode) -> None:
        """The last descriptor on one description closed."""
        node.open_count -= 1
        self.note(node)
        self._maybe_release(node)

    def _maybe_release(self, node: Inode) -> None:
        """Recycle the inode number once no name and no open fd keeps it."""
        if node.nlink <= 0 and node.open_count <= 0:
            self._alloc.release(node.ino)
            key = (node.ino, node.generation)
            self._dirty.pop(key, None)
            self._dead.append(key)
            if node.fifo_pipe is not None:
                self._fifo_nodes.pop(id(node.fifo_pipe), None)

    def unlink(self, parent: Inode, name: str, now: float = 0.0) -> None:
        node = parent.lookup(name)
        if node is None:
            raise SyscallError(Errno.ENOENT, "unlink", name)
        if node.is_dir:
            raise SyscallError(Errno.EISDIR, "unlink", name)
        parent.remove_entry(name)
        node.nlink -= 1
        node.ctime = now
        parent.mtime = parent.ctime = now
        self.note(node)
        self.note(parent)
        self._maybe_release(node)

    def rmdir(self, parent: Inode, name: str, now: float = 0.0) -> None:
        node = parent.lookup(name)
        if node is None:
            raise SyscallError(Errno.ENOENT, "rmdir", name)
        if not node.is_dir:
            raise SyscallError(Errno.ENOTDIR, "rmdir", name)
        if node.entries:
            raise SyscallError(Errno.ENOTEMPTY, "rmdir", name)
        parent.remove_entry(name)
        parent.nlink -= 1
        node.nlink = 0  # the name and the self-referential "." both die
        parent.mtime = parent.ctime = now
        self.note(node)
        self.note(parent)
        self._maybe_release(node)

    def rename(self, old_parent: Inode, old_name: str, new_parent: Inode,
               new_name: str, now: float = 0.0) -> None:
        node = old_parent.lookup(old_name)
        if node is None:
            raise SyscallError(Errno.ENOENT, "rename", old_name)
        existing = new_parent.lookup(new_name)
        if existing is node:
            return  # POSIX: renaming a file onto itself is a no-op
        if existing is not None:
            if node.is_dir and not existing.is_dir:
                raise SyscallError(Errno.ENOTDIR, "rename", new_name)
            if not node.is_dir and existing.is_dir:
                raise SyscallError(Errno.EISDIR, "rename", new_name)
            if existing.is_dir and existing.entries:
                raise SyscallError(Errno.ENOTEMPTY, "rename", new_name)
            new_parent.remove_entry(new_name)
            if existing.is_dir:
                # An empty directory victim: its name and its "." die,
                # and its ".." stops linking to new_parent.
                new_parent.nlink -= 1
                existing.nlink = 0
            else:
                existing.nlink -= 1
                existing.ctime = now
            self.note(existing)
            self._maybe_release(existing)
        old_parent.remove_entry(old_name)
        new_parent.add_entry(new_name, node)
        if node.is_dir and old_parent is not new_parent:
            # The moved directory's ".." now links new_parent, not old.
            old_parent.nlink -= 1
            new_parent.nlink += 1
        node.ctime = now
        old_parent.mtime = old_parent.ctime = now
        new_parent.mtime = new_parent.ctime = now
        self.note(node)
        self.note(old_parent)
        self.note(new_parent)

    # -- metadata --------------------------------------------------------------

    def stat(self, node: Inode) -> StatResult:
        """Build the raw (irreproducible) stat result for *node*."""
        if node.is_dir:
            size = self.host.machine.directory_size(len(node.entries))
        else:
            size = node.size
        blksize = self.host.machine.fs_block_size
        return StatResult(
            st_dev=self.device_id,
            st_ino=node.ino,
            st_mode=node.full_mode,
            st_nlink=node.nlink,
            st_uid=node.uid,
            st_gid=node.gid,
            st_size=size,
            st_blksize=blksize,
            st_blocks=(size + 511) // 512,
            st_atime=node.atime,
            st_mtime=node.mtime,
            st_ctime=node.ctime,
        )

    def dirent_order(self, node: Inode) -> List[Dirent]:
        """Entries of directory *node* in filesystem (salted-hash) order.

        This is the raw ``getdents`` order: deterministic for one boot but
        different across boots/machines, which is why DetTrace must sort.

        The order is memoized on the inode itself until the directory
        mutates (``add_entry``/``remove_entry`` clear it), saving the
        per-name hashing on every re-listing.  Callers get a fresh list
        so cursor arithmetic can never alias the cache.
        """
        if self.cache_enabled:
            cached = node._dirent_cache
            if cached is not None:
                self.dirent_hits += 1
                return list(cached)
            self.dirent_misses += 1
        salt = self.host.dirent_hash_salt

        def hash_key(name: str) -> bytes:
            return hashlib.md5(("%d:%s" % (salt, name)).encode()).digest()

        names = sorted(node.entries, key=hash_key)
        order = [Dirent(d_ino=node.entries[n].ino, d_name=n, d_type=node.entries[n].kind)
                 for n in names]
        if self.cache_enabled:
            node._dirent_cache = list(order)
        return order

    # -- convenience for image construction / inspection -------------------------

    def mkdirs(self, path: str, now: float = 0.0) -> Inode:
        """Create all missing directories along absolute *path*."""
        node = self.root
        for comp in split_path(path):
            child = node.lookup(comp)
            if child is None:
                child = self.create_dir(node, comp, now=now)
            node = child
        return node

    def write_file(self, path: str, data: bytes, mode: int = DEFAULT_FILE_MODE,
                   now: float = 0.0) -> Inode:
        """Create or replace the file at absolute *path* with *data*."""
        parent = self.mkdirs("/".join(path.split("/")[:-1]), now=now)
        name = split_path(path)[-1]
        node = parent.lookup(name)
        if node is None:
            node = self.create_file(parent, name, mode=mode, now=now, data=data)
        else:
            node.data = bytearray(data)
            node.mtime = node.ctime = now
            self.note(node)
        return node

    def read_file(self, path: str) -> bytes:
        node = self.resolve(self.root, self.root, path)
        if not node.is_regular:
            raise SyscallError(Errno.EISDIR, "read_file", path)
        return bytes(node.data)

    def exists(self, path: str) -> bool:
        try:
            self.resolve(self.root, self.root, path)
            return True
        except SyscallError:
            return False

    def walk(self, start: Optional[Inode] = None, prefix: str = "") -> Iterable[Tuple[str, Inode]]:
        """Yield ``(path, inode)`` for every object under *start*, sorted."""
        node = start if start is not None else self.root
        yield (prefix or "/", node)
        if node.is_dir:
            for name in sorted(node.entries):
                child = node.entries[name]
                yield from self.walk(child, prefix + "/" + name)

    def snapshot(self, include_metadata: bool = False) -> Dict[str, bytes]:
        """Flatten the tree to ``{path: content}`` for artifact comparison.

        With *include_metadata*, each entry also encodes mode/uid/gid (the
        metadata diffoscope would compare inside an archive).
        """
        out: Dict[str, bytes] = {}
        for path, node in self.walk():
            if node.is_regular:
                content = bytes(node.data)
                if include_metadata:
                    content = (b"%o:%d:%d|" % (node.mode, node.uid, node.gid)) + content
                out[path] = content
            elif node.kind is FileKind.SYMLINK:
                out[path] = b"->" + node.symlink_target.encode()
        return out
