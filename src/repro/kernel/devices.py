"""Character devices: /dev/null, /dev/zero, /dev/urandom, consoles.

``/dev/random`` and ``/dev/urandom`` read from the host entropy pool — a
prime irreproducibility source (paper §5.2).  DetTrace replaces them with
named pipes fed by its LFSR PRNG; in the simulation the same effect is
achieved by swapping the device read hook inside the container image.
"""

from __future__ import annotations

from typing import Callable, List

from ..cpu.machine import HostEnvironment
from .filesystem import Filesystem
from .inode import Inode


class ConsoleStream:
    """Collects guest writes to stdout/stderr for host-side inspection."""

    def __init__(self, name: str):
        self.name = name
        self.chunks: List[bytes] = []

    def write(self, data: bytes) -> int:
        self.chunks.append(bytes(data))
        return len(data)

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)

    def text(self) -> str:
        return self.getvalue().decode(errors="replace")


def make_urandom_read(host: HostEnvironment) -> Callable[[int], bytes]:
    """Read hook backed by the host's true entropy pool."""

    def read(n: int) -> bytes:
        return host.entropy_bytes(n)

    return read


def install_standard_devices(fs: Filesystem, host: HostEnvironment,
                             stdout: ConsoleStream, stderr: ConsoleStream) -> None:
    """Populate ``/dev`` with the devices guest programs expect."""
    dev = fs.mkdirs("/dev", now=host.boot_epoch)

    def null_read(n: int) -> bytes:
        return b""

    def null_write(data: bytes) -> int:
        return len(data)

    def zero_read(n: int) -> bytes:
        return b"\x00" * n

    urandom_read = make_urandom_read(host)

    fs.create_device(dev, "null", dev_read=null_read, dev_write=null_write,
                     now=host.boot_epoch)
    fs.create_device(dev, "zero", dev_read=zero_read, dev_write=null_write,
                     now=host.boot_epoch)
    fs.create_device(dev, "random", dev_read=urandom_read, dev_write=null_write,
                     now=host.boot_epoch)
    fs.create_device(dev, "urandom", dev_read=urandom_read, dev_write=null_write,
                     now=host.boot_epoch)
    fs.create_device(dev, "stdout", dev_read=null_read, dev_write=stdout.write,
                     now=host.boot_epoch)
    fs.create_device(dev, "stderr", dev_read=null_read, dev_write=stderr.write,
                     now=host.boot_epoch)


def find_device(fs: Filesystem, path: str) -> Inode:
    """Resolve a device inode by absolute path (image-construction helper)."""
    return fs.resolve(fs.root, fs.root, path)
