"""The simulated Linux substrate (the unmodified box of Figure 2)."""

from .errors import (
    DeadlockError,
    Errno,
    GuestCrash,
    KernelPanic,
    SimTimeout,
    SyscallError,
)
from .kernel import Kernel, KernelStats
from .ops import Compute, Instr, RerunSyscall, SkipSyscall, Syscall, VdsoCall

__all__ = [
    "Compute",
    "DeadlockError",
    "Errno",
    "GuestCrash",
    "Instr",
    "Kernel",
    "KernelPanic",
    "KernelStats",
    "RerunSyscall",
    "SimTimeout",
    "SkipSyscall",
    "Syscall",
    "SyscallError",
    "VdsoCall",
]
