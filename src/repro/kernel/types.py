"""Shared constants and plain-data types for the simulated kernel.

These mirror the corresponding Linux UAPI definitions closely enough that
guest programs and the DetTrace determinization handlers read naturally
next to the paper's description of the real system.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

# ---------------------------------------------------------------------------
# open(2) flags
# ---------------------------------------------------------------------------

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400
O_NONBLOCK = 0x800
O_DIRECTORY = 0x10000
O_CLOEXEC = 0x80000

ACCMODE_MASK = 0x3

# ---------------------------------------------------------------------------
# lseek(2) whence
# ---------------------------------------------------------------------------

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# ---------------------------------------------------------------------------
# File mode bits (subset of <sys/stat.h>)
# ---------------------------------------------------------------------------

S_IFMT = 0o170000
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFCHR = 0o020000
S_IFIFO = 0o010000
S_IFLNK = 0o120000
S_IFSOCK = 0o140000

DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755


class FileKind(enum.Enum):
    """What an inode is; the simulated VFS dispatches on this."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    CHARDEV = "chardev"
    FIFO = "fifo"
    SYMLINK = "symlink"
    SOCKET = "socket"

    @property
    def mode_bits(self) -> int:
        return {
            FileKind.REGULAR: S_IFREG,
            FileKind.DIRECTORY: S_IFDIR,
            FileKind.CHARDEV: S_IFCHR,
            FileKind.FIFO: S_IFIFO,
            FileKind.SYMLINK: S_IFLNK,
            FileKind.SOCKET: S_IFSOCK,
        }[self]


# ---------------------------------------------------------------------------
# Signals (subset)
# ---------------------------------------------------------------------------

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGABRT = 6
SIGKILL = 9
SIGSEGV = 11
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGVTALRM = 26
SIGPROF = 27

#: Signals whose default action terminates the process.
FATAL_SIGNALS = frozenset(
    [SIGHUP, SIGINT, SIGQUIT, SIGILL, SIGABRT, SIGKILL, SIGSEGV, SIGPIPE, SIGALRM, SIGTERM]
)

#: Signals that act like precise exceptions: they halt the program at a
#: well-defined point and are therefore naturally reproducible (paper §5.4).
PRECISE_EXCEPTION_SIGNALS = frozenset([SIGSEGV, SIGILL, SIGABRT])

# ---------------------------------------------------------------------------
# wait4(2)
# ---------------------------------------------------------------------------

WNOHANG = 1

# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------

CLOCK_REALTIME = 0
CLOCK_MONOTONIC = 1
CLOCK_PROCESS_CPUTIME_ID = 2

# ---------------------------------------------------------------------------
# futex(2) ops
# ---------------------------------------------------------------------------

FUTEX_WAIT = 0
FUTEX_WAKE = 1

# ---------------------------------------------------------------------------
# Plain-data structures returned by syscalls
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class StatResult:
    """The result of ``stat(2)``/``fstat(2)``/``lstat(2)``.

    Every field here is guest-visible and therefore a potential source of
    irreproducibility that DetTrace must virtualize (paper §5.5).
    """

    st_dev: int
    st_ino: int
    st_mode: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_blksize: int
    st_blocks: int
    st_atime: float
    st_mtime: float
    st_ctime: float

    def is_dir(self) -> bool:
        return (self.st_mode & S_IFMT) == S_IFDIR

    def is_regular(self) -> bool:
        return (self.st_mode & S_IFMT) == S_IFREG


@dataclasses.dataclass
class Dirent:
    """One ``getdents(2)`` record: a directory entry as the guest sees it."""

    d_ino: int
    d_name: str
    d_type: FileKind


@dataclasses.dataclass
class Timespec:
    """Seconds/nanoseconds pair used by timing syscalls."""

    sec: int
    nsec: int

    @classmethod
    def from_float(cls, seconds: float) -> "Timespec":
        sec = int(seconds)
        nsec = int(round((seconds - sec) * 1e9))
        if nsec >= 1_000_000_000:
            sec += 1
            nsec -= 1_000_000_000
        return cls(sec, nsec)

    def to_float(self) -> float:
        return self.sec + self.nsec / 1e9


@dataclasses.dataclass
class UtsName:
    """``uname(2)`` result; masked by DetTrace to a canonical machine (§3)."""

    sysname: str
    nodename: str
    release: str
    version: str
    machine: str

    def as_tuple(self):
        return (self.sysname, self.nodename, self.release, self.version, self.machine)


@dataclasses.dataclass
class SysInfo:
    """``sysinfo(2)``-style system facts guests can observe."""

    uptime: float
    total_ram: int
    nprocs: int


@dataclasses.dataclass
class WaitResult:
    """Result of a successful ``wait4(2)``."""

    pid: int
    status: int

    @property
    def exit_code(self) -> Optional[int]:
        """Exit code if the child exited normally, else ``None``."""
        if self.status & 0x7F == 0:
            return (self.status >> 8) & 0xFF
        return None

    @property
    def term_signal(self) -> Optional[int]:
        """Terminating signal if killed by a signal, else ``None``."""
        sig = self.status & 0x7F
        return sig if sig else None


def make_exit_status(code: int) -> int:
    """Encode a normal exit *code* the way ``wait4`` reports it."""
    return (code & 0xFF) << 8


def make_signal_status(signum: int) -> int:
    """Encode death-by-signal the way ``wait4`` reports it."""
    return signum & 0x7F


@dataclasses.dataclass
class CpuidResult:
    """What the ``cpuid`` instruction reports for one leaf."""

    vendor: str
    brand: str
    family: int
    model: int
    cores: int
    features: List[str]

    def has_feature(self, name: str) -> bool:
        return name in self.features


@dataclasses.dataclass
class TimesResult:
    """``times(2)``: CPU time accounting (clock-tick granularity)."""

    utime: float
    stime: float
    cutime: float
    cstime: float


@dataclasses.dataclass
class StatfsResult:
    """``statfs(2)``: filesystem statistics — thoroughly host-dependent."""

    f_type: int
    f_bsize: int
    f_blocks: int
    f_bfree: int
    f_files: int
    f_ffree: int
