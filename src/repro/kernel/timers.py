"""Timers: alarm/setitimer bookkeeping (paper §5.4 substrate).

Natively a timer is just a future signal-delivery event on the DES; the
kernel keeps enough bookkeeping that ``alarm(0)`` cancels and a second
``alarm`` returns the remaining seconds, like real Linux.  Under DetTrace
the timer syscalls never reach this module at all: the tracer emulates
them ("timers expire instantaneously", §5.4).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


@dataclasses.dataclass
class PendingTimer:
    """One armed per-process timer."""

    deadline: float     # virtual time when it fires
    signum: int
    generation: int     # stale-event guard: re-arming bumps this


class TimerTable:
    """Per-process armed timers, keyed by pid."""

    def __init__(self):
        self._timers: Dict[int, PendingTimer] = {}
        self._generation = 0

    def arm(self, pid: int, deadline: float, signum: int) -> int:
        """Arm (or re-arm) the process's timer; returns the generation to
        embed in the DES event so stale firings are dropped."""
        self._generation += 1
        self._timers[pid] = PendingTimer(deadline=deadline, signum=signum,
                                         generation=self._generation)
        return self._generation

    def cancel(self, pid: int) -> None:
        self._timers.pop(pid, None)

    def remaining(self, pid: int, now: float) -> float:
        timer = self._timers.get(pid)
        if timer is None:
            return 0.0
        return max(0.0, timer.deadline - now)

    def should_fire(self, pid: int, generation: int) -> Optional[int]:
        """Validate a DES firing: returns the signum or None if stale."""
        timer = self._timers.get(pid)
        if timer is None or timer.generation != generation:
            return None
        del self._timers[pid]
        return timer.signum
