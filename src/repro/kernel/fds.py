"""File descriptors and per-process descriptor tables."""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Optional

from .errors import Errno, SyscallError
from .inode import Inode
from .pipes import Pipe


class FdKind(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"
    PIPE_READ = "pipe_read"
    PIPE_WRITE = "pipe_write"
    DEVICE = "device"
    #: One end of an AF_UNIX socketpair (bidirectional; peer_pipe is the
    #: send direction, pipe the receive direction).
    SOCKETPAIR = "socketpair"
    #: A stream socket (repro.kernel.sockets): unbound, listening, or
    #: connected (then pipe/peer_pipe carry the two directions, exactly
    #: like SOCKETPAIR).
    SOCKET = "socket"


@dataclasses.dataclass
class OpenFile:
    """An open file description (shared across dup'd descriptors).

    ``path`` records the absolute container path the description was
    opened with; DetTrace's inode virtualization reads it back the way the
    real system reads ``/proc/self/fd`` (paper §5.5).
    """

    kind: FdKind
    flags: int = 0
    offset: int = 0
    path: str = ""
    inode: Optional[Inode] = None
    pipe: Optional[Pipe] = None
    refcount: int = 1

    #: Send-direction pipe for SOCKETPAIR and connected SOCKET
    #: descriptions.
    peer_pipe: Optional[Pipe] = None

    #: True when this description was counted in its inode's
    #: ``open_count`` (set by sys_open); the last close must then report
    #: back to the filesystem so unlinked-but-open inode numbers are
    #: recycled only after the final descriptor goes away.
    counts_inode: bool = False

    # -- SOCKET state (repro.kernel.sockets) ---------------------------
    #: Local address ("127.0.0.1:32768" or an AF_UNIX path; "" unbound).
    sock_local: str = ""
    #: Peer address once connected.
    sock_peer: str = ""
    #: Address family (sockets.AF_UNIX / AF_INET) for SOCKET kinds.
    sock_family: int = 0
    #: True when this description claimed its address via bind (close
    #: must release it back to the registry).
    sock_bound: bool = False
    #: The registry Listener this description owns (listening sockets).
    listener: Optional[object] = None
    #: shutdown(2) state: directions already torn down (close must not
    #: double-close the underlying pipe ends).
    shut_rd: bool = False
    shut_wr: bool = False

    @property
    def is_pipe(self) -> bool:
        return self.kind in (FdKind.PIPE_READ, FdKind.PIPE_WRITE,
                             FdKind.SOCKETPAIR, FdKind.SOCKET)


class FDTable:
    """Per-process mapping of descriptor numbers to open file descriptions."""

    MAX_FDS = 1024

    def __init__(self):
        self._fds: Dict[int, OpenFile] = {}

    def lowest_free(self, minimum: int = 0) -> int:
        fd = minimum
        while fd in self._fds:
            fd += 1
        if fd >= self.MAX_FDS:
            raise SyscallError(Errno.EMFILE, "open")
        return fd

    def install(self, of: OpenFile, minimum: int = 0) -> int:
        fd = self.lowest_free(minimum)
        self._fds[fd] = of
        return fd

    def install_at(self, fd: int, of: OpenFile) -> None:
        self._fds[fd] = of

    def get(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise SyscallError(Errno.EBADF, "fd %d" % fd) from None

    def remove(self, fd: int) -> OpenFile:
        try:
            return self._fds.pop(fd)
        except KeyError:
            raise SyscallError(Errno.EBADF, "fd %d" % fd) from None

    def has(self, fd: int) -> bool:
        return fd in self._fds

    def dup(self, fd: int, minimum: int = 0) -> int:
        of = self.get(fd)
        of.refcount += 1
        return self.install(of, minimum)

    def dup2(self, oldfd: int, newfd: int,
             dropper: Optional[Callable[[OpenFile], None]] = None) -> int:
        """dup2(2): *newfd* becomes another name for *oldfd*'s description.

        A displaced *newfd* is implicitly closed.  That close must be a
        *full* close when it was the description's last reference —
        pipe reader/writer teardown, deferred inode-number release — so
        callers pass the kernel's drop hook as *dropper*.  A bare
        refcount decrement (the pre-fix behaviour, kept as the fallback
        for hookless unit-test tables) leaks reader/writer counts and
        EOF/EPIPE are never delivered on the other end.
        """
        of = self.get(oldfd)
        if oldfd == newfd:
            return newfd
        existing = self._fds.pop(newfd, None)
        of.refcount += 1
        self._fds[newfd] = of
        if existing is not None:
            if dropper is not None:
                dropper(existing)
            else:
                existing.refcount -= 1
        return newfd

    def items(self):
        return list(self._fds.items())

    def fork_copy(self) -> "FDTable":
        """Duplicate the table for a forked child (descriptions shared)."""
        table = FDTable()
        for fd, of in self._fds.items():
            of.refcount += 1
            table._fds[fd] = of
        return table

    def __len__(self) -> int:
        return len(self._fds)
