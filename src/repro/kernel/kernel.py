"""The simulated kernel: a discrete-event executive for guest programs.

Guest threads are Python generators yielding operations
(:mod:`repro.kernel.ops`).  The kernel schedules them over ``ncores``
simulated cores with virtual time, executes syscalls against the VFS and
process table, and — when a tracer is attached — delivers ptrace-style
stops exactly where the real kernel would.

Nothing in this module determinizes anything: the kernel is the *unshaded
box* of the paper's Figure 2.  All reproducibility logic lives in the
tracer layers above.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cpu.machine import HostEnvironment
from ..obs.collector import Collector
from ..obs.events import EXIT, SPAWN, EventRing, ObsEvent
from .clock import SimClock
from .costs import (
    COMPUTE_JITTER_FRAC,
    SYSCALL_TICK,
    IO_BANDWIDTH,
    SYSCALL_BASE_COST,
    SYSCALL_COSTS,
)
from .devices import ConsoleStream, install_standard_devices
from .errors import DeadlockError, Errno, GuestCrash, KernelPanic, SimTimeout, SyscallError
from .filesystem import Filesystem
from .fds import OpenFile, FdKind
from .ops import Compute, Instr, Syscall, VdsoCall, VvarRead
from .process import Process, Thread, ThreadState
from .syscalls import ExecveReplace, ExitProcess, ExitThread, Sleep, SyscallTable
from .signals import Disposition, classify
from .sockets import SocketRegistry
from .timers import TimerTable
from .types import make_exit_status, make_signal_status, SIGCHLD, CLOCK_MONOTONIC
from .vdso import Vdso
from .waiting import Channel, WouldBlock

#: Reference clock rate the Compute.work unit is defined against.
REFERENCE_GHZ = 2.2

#: Delay between spawn syscall completion and the child's first step.
CHILD_START_DELAY = 20e-6

DEFAULT_MAX_EVENTS = 50_000_000


#: How many trailing syscall dispatches the kernel remembers for crash
#: reports ("last N syscalls" — repro.faults.report).
RECENT_SYSCALL_WINDOW = 32


class KernelStats:
    """Aggregate counters for one kernel run (Figure 5's x-axis, etc.)."""

    def __init__(self):
        self.syscalls = 0
        self.syscalls_by_name: Counter = Counter()
        self.instructions: Counter = Counter()
        self.vdso_calls = 0
        self.processes_spawned = 0
        self.threads_spawned = 0
        self.events_processed = 0
        #: The shared recent-events ring (repro.obs.events.EventRing) of
        #: ``(vts, nspid, index, name)`` tuples: forensics for the crash
        #: report's "last N syscalls" and the divergence differ's
        #: context windows.  Entries stay compact because this append
        #: sits on the per-syscall fast path; they materialize into the
        #: shared :class:`repro.obs.events.ObsEvent` schema on demand
        #: via :meth:`recent_syscall_events`, so crash reports, traces
        #: and divergence reports all agree on coordinates.
        self.recent_syscalls: EventRing = EventRing(RECENT_SYSCALL_WINDOW)

    def count_syscall(self, name: str) -> None:
        self.syscalls += 1
        self.syscalls_by_name[name] += 1

    def recent_syscall_events(self) -> List[ObsEvent]:
        """The ring as structured events (the crash-forensics view)."""
        return self.recent_syscalls.events()

    def count_instr(self, name: str) -> None:
        self.instructions[name] += 1


class Kernel:
    """One booted instance of the simulated OS."""

    def __init__(self, host: HostEnvironment):
        from ..cpu.instructions import Cpu  # deferred: breaks the kernel<->cpu import cycle

        self.host = host
        self.clock = SimClock(host)
        self.cpu = Cpu(host)
        self.fs = Filesystem(host)
        self.vdso = Vdso(self.clock)
        self.timers = TimerTable()
        self.stdout = ConsoleStream("stdout")
        self.stderr = ConsoleStream("stderr")
        install_standard_devices(self.fs, host, self.stdout, self.stderr)
        from .procfs import install_procfs
        install_procfs(self)
        self.table = SyscallTable(self)
        #: Per-container socket namespace: listeners, bound addresses and
        #: the deterministic ephemeral-port counter (repro.kernel.sockets).
        self.sockets = SocketRegistry()
        #: Registry of executable paths -> program factories.
        self.binaries: Dict[str, Callable] = {}
        #: The simulated internet: url -> body bytes (set by images).
        self.network: Dict[str, bytes] = {}
        self.processes: List[Process] = []
        self.stats = KernelStats()
        #: The run's observability collector (repro.obs).  Containers
        #: install their own before boot; the default collects aggregates
        #: that are simply never surfaced.  Purely passive either way.
        self.obs = Collector()

        self._events: List[Tuple[float, int, Callable[[], None], Any]] = []
        self._seq = 0
        #: Per-name caches for the syscall fast path: the resolved base
        #: cost and the interned counter key for untraced dispatches
        #: (avoids a dict-miss default and a tuple allocation per call).
        self._cost_cache: Dict[str, float] = {}
        self._untraced_key_cache: Dict[str, Tuple[str, str, str]] = {}
        self._pid_next = host.pid_start
        self._tid_next = host.pid_start + 50_000

        #: Container PID namespace: when set, children get sequential
        #: namespace PIDs starting at this counter (DetTrace, §5.1).
        self._nspid_next: Optional[int] = None

        self.tracer = None
        #: Deterministic fault injector (repro.faults); None = no plane.
        self.faults = None
        #: Checkpoint manager (repro.ckpt); None = checkpointing off and
        #: every hook below compiles down to one attribute test.
        self.ckpt = None
        #: Event tick at which an injected KILL_AT_TICK fault crashes
        #: the run (None = never).
        self._kill_at: Optional[int] = None
        self.cores_busy = 0
        self._core_queue: List[Tuple[Thread, float]] = []
        self._parked: Dict[Channel, List[Thread]] = {}

        #: DetTrace thread serialization (§5.7).
        self.serialize_threads = False
        #: Busy-wait detection budget in Compute-work seconds (§5.9).
        self.busy_wait_budget: Optional[float] = None
        #: Fixed ASLR base (container disables ASLR).
        self.aslr_override: Optional[int] = None
        #: Default uid for the init process.
        self.default_uid = 1000

    # ------------------------------------------------------------------
    # configuration hooks (used by containers/tracers before boot)
    # ------------------------------------------------------------------

    def register_binary(self, path: str, factory: Callable) -> None:
        """Register a guest program at *path*; creates a stub file too."""
        self.binaries[path] = factory
        if not self.fs.exists(path):
            self.fs.write_file(path, b"#!ELF %s" % path.encode(), mode=0o755,
                               now=self.host.boot_epoch)

    def attach_tracer(self, tracer) -> None:
        if self.tracer is not None:
            raise KernelPanic("a tracer is already attached")
        self.tracer = tracer

    def enable_pid_namespace(self, first_pid: int = 1) -> None:
        self._nspid_next = first_pid

    def install_faults(self, plan, attempt: int = 0):
        """Install the deterministic fault plane for this boot.

        Wires one :class:`repro.faults.FaultInjector` into both consult
        points (syscall dispatch and the filesystem) and returns it.
        """
        from ..faults.injector import FaultInjector

        injector = FaultInjector(plan, attempt=attempt)
        self.faults = injector
        self.fs.fault_injector = injector
        self._kill_at = injector.next_kill_tick()
        return injector

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[], None],
                 desc: Any = None) -> None:
        # *desc* is a picklable descriptor of *fn* for checkpointing;
        # (time, seq) is unique so fn/desc never participate in heap
        # comparisons.
        heapq.heappush(self._events,
                       (max(time, self.clock.now), self._seq, fn, desc))
        self._seq += 1

    def live_processes(self) -> List[Process]:
        return [p for p in self.processes if p.alive]

    def run(self, deadline: Optional[float] = None,
            max_events: int = DEFAULT_MAX_EVENTS) -> None:
        """Drive the simulation until all processes exit.

        Raises :class:`SimTimeout` past *deadline* virtual seconds and
        :class:`DeadlockError` if live threads remain with no possible
        progress.
        """
        while True:
            if not self._events:
                if not self.live_processes():
                    return
                if self.tracer is not None and self.tracer.on_quiescent():
                    continue
                raise DeadlockError(
                    "no progress possible; live pids=%s"
                    % [p.pid for p in self.live_processes()])
            if (self._kill_at is not None
                    and self.stats.events_processed >= self._kill_at):
                # Injected crash (KILL_AT_TICK): fires *between* events,
                # exactly where a checkpoint barrier sits, so a resumed
                # run continues from event tick N as if nothing happened.
                from ..faults.injector import KilledAtTick

                tick = self.stats.events_processed
                if self.faults is not None:
                    self.faults.record_kill(tick)
                self._kill_at = None
                raise KilledAtTick(tick)
            t, _seq, fn, _desc = heapq.heappop(self._events)
            if deadline is not None and t > deadline:
                raise SimTimeout(deadline)
            self.clock.advance_to(t)
            self.stats.events_processed += 1
            if self.stats.events_processed > max_events:
                raise KernelPanic("event budget exhausted (%d)" % max_events)
            fn()
            if self.ckpt is not None:
                self.ckpt.maybe_barrier(self)

    # ------------------------------------------------------------------
    # process / thread creation
    # ------------------------------------------------------------------

    def make_sys(self, thread: Thread):
        from ..guest.runtime import Sys  # lazy: guest layer sits above us

        return Sys(thread)

    def _alloc_nspid(self) -> int:
        if self._nspid_next is None:
            return 0
        nspid = self._nspid_next
        self._nspid_next += 1
        return nspid

    def boot(self, path: str, argv: Optional[List[str]] = None,
             env: Optional[Dict[str, str]] = None, uid: Optional[int] = None,
             cwd_path: str = "/") -> Process:
        """Create the init process (does not run it; call :meth:`run`)."""
        factory = self.binaries.get(path)
        if factory is None:
            raise KernelPanic("no binary registered at %r" % path)
        pid = self._pid_next
        self._pid_next += 1
        nspid = pid if self._nspid_next is None else self._alloc_nspid()
        cwd = self.fs.resolve(self.fs.root, self.fs.root, cwd_path)
        proc = Process(
            pid=pid, nspid=nspid, parent=None, root=self.fs.root, cwd=cwd,
            cwd_path=cwd_path, env=env if env is not None else dict(self.host.env),
            argv=argv or [path], uid=self.default_uid if uid is None else uid,
            gid=0, aslr_base=self._aslr_base())
        self._wire_standard_fds(proc)
        self.processes.append(proc)
        self.stats.processes_spawned += 1
        self.obs.count(("process", "spawn"))
        self.obs.record(ObsEvent(vts=0.0, pid=proc.nspid, index=-1,
                                 kind=SPAWN, name=path))
        thread = self._make_thread(proc, factory)
        if self.ckpt is not None:
            self.ckpt.record_spawn(thread.tid, path, proc.argv, proc.env)
        if self.tracer is not None:
            self.tracer.on_process_spawn(proc)
            self.tracer.on_execve(proc)
        self.schedule(self.clock.now,
                      lambda: self._step_or_wait(thread, None, None),
                      ("step", thread.tid, None, None))
        return proc

    def _aslr_base(self) -> int:
        if self.aslr_override is not None:
            return self.aslr_override
        return self.host.aslr_base()

    def _wire_standard_fds(self, proc: Process) -> None:
        stdin = OpenFile(kind=FdKind.DEVICE, path="/dev/null",
                         inode=self.fs.resolve(self.fs.root, self.fs.root, "/dev/null"))
        out = OpenFile(kind=FdKind.DEVICE, path="/dev/stdout",
                       inode=self.fs.resolve(self.fs.root, self.fs.root, "/dev/stdout"))
        err = OpenFile(kind=FdKind.DEVICE, path="/dev/stderr",
                       inode=self.fs.resolve(self.fs.root, self.fs.root, "/dev/stderr"))
        proc.fdtable.install_at(0, stdin)
        proc.fdtable.install_at(1, out)
        proc.fdtable.install_at(2, err)

    def _make_thread(self, proc: Process, factory: Callable) -> Thread:
        import inspect

        thread = Thread(tid=self._tid_next, process=proc, gen=None)
        self._tid_next += 1
        proc.threads.append(thread)
        gen = factory(self.make_sys(thread))
        if not inspect.isgenerator(gen):
            raise KernelPanic(
                "guest program %r must be a generator function (did it "
                "forget to yield?)" % getattr(factory, "__name__", factory))
        thread.gen_stack = [gen]
        return thread

    def spawn_child(self, parent: Process, path: str,
                    argv: Optional[List[str]] = None,
                    env: Optional[Dict[str, str]] = None,
                    stdio: Optional[Dict[int, Optional[int]]] = None,
                    close_fds: Optional[List[int]] = None,
                    caller: Optional[Thread] = None) -> int:
        """fork + execve: create a child of *parent* running *path*."""
        factory = self.binaries.get(path)
        if factory is None:
            raise SyscallError(Errno.ENOENT, "spawn_process", path)
        pid = self._pid_next
        self._pid_next += 1
        nspid = pid if self._nspid_next is None else self._alloc_nspid()
        child = Process(
            pid=pid, nspid=nspid, parent=parent, root=parent.root,
            cwd=parent.cwd, cwd_path=parent.cwd_path,
            env=env if env is not None else dict(parent.env),
            argv=argv or [path], uid=parent.uid, gid=parent.gid,
            aslr_base=self._aslr_base())
        child.umask = parent.umask
        child.fdtable = parent.fdtable.fork_copy()
        for target_fd, parent_fd in (stdio or {}).items():
            if parent_fd is not None:
                child.fdtable.dup2(parent_fd, target_fd, self.drop_open_file)
        for fd in close_fds or []:
            if child.fdtable.has(fd):
                self.drop_open_file(child.fdtable.remove(fd))
        parent.children.append(child)
        self.processes.append(child)
        self.stats.processes_spawned += 1
        self.obs.count(("process", "spawn"))
        self.obs.record(ObsEvent(
            vts=caller.det_clock if caller is not None else 0.0,
            pid=child.nspid, index=-1, kind=SPAWN, name=path))
        thread = self._make_thread(child, factory)
        if self.ckpt is not None:
            self.ckpt.record_spawn(thread.tid, path, child.argv, child.env)
        if caller is not None:
            # The spawn happens-before everything the child does: start
            # the child's deterministic clock at its creator's, so the
            # reproducible scheduler never has to drain the child's whole
            # logical history before servicing the parent again.
            thread.det_clock = caller.det_clock
            thread.det_bound = caller.det_clock
        if self.tracer is not None:
            self.tracer.on_process_spawn(child)
            self.tracer.on_execve(child)
        start = self.clock.now + CHILD_START_DELAY * (1 + self.host.sched_jitter())
        self.schedule(start, lambda: self._step_or_wait(thread, None, None),
                      ("step", thread.tid, None, None))
        return child.nspid

    def spawn_thread(self, proc: Process, func: Callable,
                     caller: Optional[Thread] = None) -> int:
        thread = Thread(tid=self._tid_next, process=proc, gen=None)
        self._tid_next += 1
        proc.threads.append(thread)
        thread.gen_stack = [func(self.make_sys(thread))]
        if self.ckpt is not None and caller is not None:
            self.ckpt.record_tspawn(thread.tid, caller.tid)
        if caller is not None:
            thread.det_clock = caller.det_clock
            thread.det_bound = caller.det_clock
        self.stats.threads_spawned += 1
        if self.tracer is not None:
            self.tracer.on_thread_spawn(thread)
        if self.serialize_threads and caller is not None:
            # Deterministic thread serialization (§5.7): the new thread
            # begins life at the back of the step queue; the spawner keeps
            # running until it blocks or exits.  Enqueueing here — during
            # the serialized spawn syscall — keeps the queue order a pure
            # function of guest behaviour (a timed start event would race
            # with jittered compute).
            if getattr(proc, "_step_token", None) is None:
                proc._step_token = caller
            proc.memory.setdefault("_step_queue", []).append((thread, None, None))
            thread.state = ThreadState.RUNNABLE
            thread.token_queued = True
            return thread.tid
        start = self.clock.now + CHILD_START_DELAY * (1 + self.host.sched_jitter())
        self.schedule(start, lambda: self._step_or_wait(thread, None, None),
                      ("step", thread.tid, None, None))
        return thread.tid

    # ------------------------------------------------------------------
    # the generator trampoline
    # ------------------------------------------------------------------

    def _step_or_wait(self, thread: Thread, value: Any, exc: Optional[BaseException]) -> None:
        """Execute the thread's next step, honouring thread serialization."""
        if not thread.alive:
            return
        proc = thread.process
        if self.serialize_threads and len(proc.live_threads()) > 1:
            holder = getattr(proc, "_step_token", None)
            if holder is not None and holder is not thread and holder.alive:
                queue = proc.memory.setdefault("_step_queue", [])
                queue.append((thread, value, exc))
                thread.state = ThreadState.RUNNABLE
                thread.token_queued = True
                return
            proc._step_token = thread
        self._step(thread, value, exc)

    def _release_token(self, thread: Thread) -> None:
        proc = thread.process
        if getattr(proc, "_step_token", None) is not thread:
            return
        proc._step_token = None
        queue = proc.memory.get("_step_queue") or []
        while queue:
            nxt, value, exc = queue.pop(0)
            if nxt.alive:
                proc._step_token = nxt
                nxt.token_queued = False
                if self.tracer is not None:
                    # The grantee re-enters the running set here — the
                    # only place token_queued flips back — so schedulers
                    # with an incremental running-set index are told
                    # before the thread takes another step.
                    self.tracer.on_token_granted(nxt)
                self._step(nxt, value, exc)
                return

    def _step(self, thread: Thread, value: Any, exc: Optional[BaseException]) -> None:
        """Advance the top generator frame and dispatch the yielded op."""
        while True:
            if not thread.alive:
                return
            # Deliver queued signals by pushing handler frames (§5.4).
            if thread.pending_signals:
                signum = thread.pending_signals.pop(0)
                action = thread.process.signal_handlers.get(signum, "default")
                if callable(action):
                    handler_gen = action(self.make_sys(thread), signum)
                    saved = thread.process.memory.setdefault("_saved_%d" % thread.tid, [])
                    saved.append((value, exc))
                    thread.gen_stack.append(handler_gen)
                    if self.ckpt is not None:
                        self.ckpt.record_push(thread.tid, signum, value, exc)
                    value, exc = None, None
            gen = thread.gen_stack[-1]
            thread.state = ThreadState.DISPATCH
            if self.ckpt is not None:
                # Every value/exception a guest frame ever receives flows
                # through this one send/throw below — the resume tape
                # records them all (repro.ckpt).
                self.ckpt.record_step(thread.tid, value, exc)
            try:
                if exc is not None:
                    op = gen.throw(exc)
                else:
                    op = gen.send(value)
            except StopIteration as stop:
                saved_key = "_saved_%d" % thread.tid
                saved = thread.process.memory.get(saved_key) or []
                if len(thread.gen_stack) > 1:
                    thread.gen_stack.pop()
                    if saved:
                        value, exc = saved.pop()
                    else:
                        value, exc = None, None
                    continue
                code = stop.value if isinstance(stop.value, int) else 0
                self._thread_finished(thread, code)
                return
            except GuestCrash as crash:
                self.terminate_process(thread.process, make_signal_status(crash.signum))
                return
            except SyscallError as err:
                self.stderr.write(("pid %d: uncaught %s\n" % (thread.process.nspid, err)).encode())
                self.terminate_process(thread.process, make_exit_status(1))
                return
            value, exc = None, None
            # Dispatch the yielded operation.
            if isinstance(op, Instr):
                result = self._execute_instr(thread, op)
                if result is _SUSPENDED:
                    return
                value = result
                continue
            if isinstance(op, VdsoCall):
                if thread.process.vdso_patched:
                    self._dispatch_syscall(thread, Syscall(op.name, op.args))
                    return
                self.stats.vdso_calls += 1
                value = self.vdso.call(op.name, op.args)
                continue
            if isinstance(op, VvarRead):
                if thread.process.vdso_patched:
                    # DetTrace made the vvar page unreadable: the load
                    # faults at a well-defined point (a precise exception,
                    # naturally reproducible — §5.4).
                    self.terminate_process(thread.process,
                                           make_signal_status(11))
                    return
                value = self.vdso.read_vvar()
                continue
            if isinstance(op, Compute):
                self._dispatch_compute(thread, op)
                return
            if isinstance(op, Syscall):
                self._dispatch_syscall(thread, op)
                return
            raise KernelPanic("guest yielded %r" % (op,))

    def _thread_finished(self, thread: Thread, code: int) -> None:
        """A guest generator ran to completion."""
        proc = thread.process
        if thread is proc.main_thread:
            self.terminate_process(proc, make_exit_status(code))
            return
        thread.state = ThreadState.EXITED
        self._release_token(thread)
        if self.tracer is not None:
            self.tracer.on_thread_exit(thread)
        if not proc.live_threads():
            self.terminate_process(proc, make_exit_status(0))

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------

    def _dispatch_compute(self, thread: Thread, op: Compute) -> None:
        thread.compute_since_syscall += op.work
        if (self.busy_wait_budget is not None
                and thread.compute_since_syscall > self.busy_wait_budget):
            if self.tracer is not None:
                self.tracer.on_busy_wait(thread)
                return
        # Commit the work to the deterministic clock's lower bound before
        # any jitter is applied: the reproducible scheduler may now let
        # earlier-stopped threads proceed past this thread.
        thread.det_bound = thread.det_clock + op.work
        scale = REFERENCE_GHZ / self.host.machine.freq_ghz
        duration = op.work * scale * (1.0 + self.host.sched_jitter(COMPUTE_JITTER_FRAC))
        duration += thread.pending_latency
        thread.pending_latency = 0.0
        self._start_compute(thread, duration)
        if self.tracer is not None:
            self.tracer.on_thread_progress(thread)

    def _start_compute(self, thread: Thread, duration: float) -> None:
        if self.cores_busy < self.host.ncores:
            self.cores_busy += 1
            thread.state = ThreadState.RUNNING
            thread._on_core = True
            thread.cpu_time += duration
            self.schedule(self.clock.now + duration,
                          lambda: self._finish_compute(thread),
                          ("finish_compute", thread.tid))
        else:
            thread.state = ThreadState.RUNNABLE
            self._core_queue.append((thread, duration))

    def _finish_compute(self, thread: Thread) -> None:
        if not getattr(thread, "_on_core", False):
            return  # torn down mid-compute; the core was already released
        self.cores_busy -= 1
        thread._on_core = False
        self._pump_core_queue()
        if not thread.alive:
            return
        thread.det_clock = max(thread.det_clock, thread.det_bound)
        self._step(thread, None, None)

    def _pump_core_queue(self) -> None:
        while self._core_queue and self.cores_busy < self.host.ncores:
            # Native schedulers pick "randomly" among waiters: host jitter.
            idx = self.host.sched_choice_index(min(len(self._core_queue), 4))
            thread, duration = self._core_queue.pop(idx)
            if not thread.alive:
                continue
            self.cores_busy += 1
            thread.state = ThreadState.RUNNING
            thread._on_core = True
            thread.cpu_time += duration
            self.schedule(self.clock.now + duration,
                          lambda t=thread: self._finish_compute(t),
                          ("finish_compute", thread.tid))

    # ------------------------------------------------------------------
    # instructions & vDSO
    # ------------------------------------------------------------------

    def _execute_instr(self, thread: Thread, op: Instr) -> Any:
        self.stats.count_instr(op.name)
        if self.tracer is not None and self.tracer.traps_instruction(thread, op.name):
            value, resume_at = self.tracer.on_instruction(thread, op.name)
            if resume_at <= self.clock.now:
                return value
            thread.state = ThreadState.TRACE_STOP
            self.schedule(resume_at,
                          lambda: self._step_or_wait(thread, value, None),
                          ("step", thread.tid, value, None))
            return _SUSPENDED
        return self.cpu.execute(op.name, self.clock.now)

    # ------------------------------------------------------------------
    # syscalls
    # ------------------------------------------------------------------

    def syscall_cost(self, thread: Thread, name: str) -> float:
        base = self._cost_cache.get(name)
        if base is None:
            base = SYSCALL_COSTS.get(name, SYSCALL_BASE_COST)
            self._cost_cache[name] = base
        extra = getattr(thread, "_io_cost", 0.0)
        thread._io_cost = 0.0
        return base + extra

    def charge_io(self, thread: Thread, nbytes: int) -> None:
        cost = nbytes / IO_BANDWIDTH
        thread._io_cost = getattr(thread, "_io_cost", 0.0) + cost
        self.obs.charge("fs", cost)

    def det_tid(self, thread: Thread) -> int:
        """Deterministic thread ordinal (tids are host-pid-base offset)."""
        return thread.tid - self.host.pid_start - 50_000

    def _dispatch_syscall(self, thread: Thread, call: Syscall) -> None:
        self.stats.count_syscall(call.name)
        proc = thread.process
        index = proc.syscall_index
        proc.syscall_index = index + 1
        # The instance's deterministic timestamp: where det_clock will
        # advance to below.  Computed up front so the structured event
        # carries it even when an injected signal storm kills the thread
        # before the advance happens.
        det_ts = max(thread.det_clock, thread.det_bound) + SYSCALL_TICK
        self.stats.recent_syscalls.push(det_ts, proc.nspid, index, call.name)
        if self.faults is not None:
            self.faults.on_dispatch(self, thread, call, index, vts=det_ts)
            if not thread.alive:
                # An injected signal storm terminated the process at the
                # dispatch point; there is nothing left to execute.
                return
        thread.compute_since_syscall = 0.0
        thread.det_clock = det_ts
        thread.det_bound = thread.det_clock
        thread.current_syscall = call
        thread.current_syscall_index = index
        thread.obs_attempt = 0
        if self.tracer is not None and self.tracer.intercepts(thread, call):
            # Note: the step token is retained across the stop; the tracer
            # releases it only when the syscall would block (§5.7's
            # "context switch at blocking syscalls").
            thread.state = ThreadState.TRACE_STOP
            self.tracer.on_trace_stop(thread)
            return
        # Not intercepted: seccomp classified it naturally reproducible
        # ("skipped"), or there is no tracer at all ("native").
        key = self._untraced_key_cache.get(call.name)
        if key is None:
            key = ("syscall", call.name,
                   "skipped" if self.tracer is not None else "native")
            self._untraced_key_cache[call.name] = key
        self.obs.count(key)
        if self.obs.trace_enabled:
            # The structured event is only materialized when someone is
            # listening: the untraced path is the seccomp-optimized
            # common case and must stay allocation-light.
            self.obs.record(ObsEvent(vts=det_ts, pid=proc.nspid, index=index,
                                     kind="syscall", name=call.name))
        self._execute_untraced(thread, call)

    def _execute_untraced(self, thread: Thread, call: Syscall) -> None:
        try:
            result = self.table.execute(thread, call)
        except WouldBlock as wb:
            self._park(thread, call, wb.channels)
            return
        except Sleep as s:
            thread.state = ThreadState.BLOCKED
            self._release_token(thread)
            self.schedule(self.clock.now + s.seconds,
                          lambda: self._step_or_wait(thread, 0, None),
                          ("step", thread.tid, 0, None))
            return
        except SyscallError as err:
            self._resume_after(thread, self.syscall_cost(thread, call.name), exc=err)
            return
        except ExitProcess as ex:
            self.terminate_process(thread.process, make_exit_status(ex.code))
            return
        except ExitThread:
            self._thread_finished(thread, 0)
            return
        except ExecveReplace as ex:
            self._do_execve(thread, ex)
            return
        self._resume_after(thread, self.syscall_cost(thread, call.name), value=result)

    def _resume_after(self, thread: Thread, delay: float, value: Any = None,
                      exc: Optional[BaseException] = None) -> None:
        thread.state = ThreadState.DISPATCH
        self.schedule(self.clock.now + delay,
                      lambda: self._step_or_wait(thread, value, exc),
                      ("step", thread.tid, value, exc))

    # -- blocking ------------------------------------------------------------

    def _park(self, thread: Thread, call: Syscall, channels: List[Channel]) -> None:
        thread.state = ThreadState.BLOCKED
        thread.wait_channels = list(channels)
        thread._parked_call = call
        self._release_token(thread)
        for ch in channels:
            self._parked.setdefault(ch, []).append(thread)

    def notify(self, channel: Channel) -> int:
        """Wake every thread parked on *channel*; returns the count."""
        woken = self._parked.pop(channel, [])
        count = 0
        for thread in woken:
            if not thread.alive or thread.state is not ThreadState.BLOCKED:
                continue
            for ch in thread.wait_channels:
                if ch is not channel and thread in self._parked.get(ch, []):
                    self._parked[ch].remove(thread)
            thread.wait_channels = []
            count += 1
            self.schedule(self.clock.now, lambda t=thread: self._retry_parked(t),
                          ("retry_parked", thread.tid))
        return count

    def _retry_parked(self, thread: Thread) -> None:
        if not thread.alive:
            return
        call = getattr(thread, "_parked_call", None)
        if call is None:
            return
        thread.state = ThreadState.DISPATCH
        self._execute_untraced(thread, call)

    # -- execve -------------------------------------------------------------------

    def _do_execve(self, thread: Thread, ex: ExecveReplace,
                   resume_at: Optional[float] = None) -> None:
        factory = self.binaries.get(ex.path)
        if factory is None:
            self._resume_after(thread, self.syscall_cost(thread, "execve"),
                               exc=SyscallError(Errno.ENOENT, "execve", ex.path))
            return
        proc = thread.process
        for sibling in proc.threads:
            if sibling is not thread and sibling.alive:
                sibling.state = ThreadState.EXITED
                self._teardown_thread(sibling)
        proc.threads = [thread]
        proc.argv = list(ex.argv)
        proc.exe_path = ex.path
        if ex.env is not None:
            proc.env = dict(ex.env)
        proc.vdso_patched = False
        thread.gen_stack = [factory(self.make_sys(thread))]
        proc.memory.pop("_saved_%d" % thread.tid, None)
        if self.ckpt is not None:
            self.ckpt.record_exec(thread.tid, ex.path, proc.argv, proc.env)
        if self.tracer is not None:
            self.tracer.on_execve(proc)
        at = resume_at if resume_at is not None else (
            self.clock.now + self.syscall_cost(thread, "execve"))
        thread.state = ThreadState.DISPATCH
        self.schedule(at, lambda: self._step_or_wait(thread, None, None),
                      ("step", thread.tid, None, None))

    # ------------------------------------------------------------------
    # signals & alarms
    # ------------------------------------------------------------------

    def deliver_signal(self, proc: Process, signum: int) -> None:
        if not proc.alive:
            return
        disposition = classify(proc.signal_handlers, signum)
        if disposition is Disposition.IGNORE:
            return
        if disposition is Disposition.TERMINATE:
            self.terminate_process(proc, make_signal_status(signum))
            return
        live = proc.live_threads()
        if not live:
            return
        target = live[0]
        target.pending_signals.append(signum)
        target.signal_interrupted = True
        proc._signals_delivered = getattr(proc, "_signals_delivered", 0) + 1
        self.notify(proc.signal_channel)
        # A blocked thread with no channel connection still gets the
        # handler at its next step; pause/interruptible sleeps listen on
        # signal_channel and wake above.

    def register_alarm(self, proc: Process, seconds: float, signum: int) -> float:
        """Arm the process's timer; returns the seconds that remained on
        any previously armed timer (the alarm(2) contract)."""
        remaining = self.timers.remaining(proc.pid, self.clock.now)
        if seconds <= 0:
            self.timers.cancel(proc.pid)
            return remaining
        generation = self.timers.arm(proc.pid, self.clock.now + seconds, signum)
        self.schedule(self.clock.now + seconds,
                      lambda: self._fire_timer(proc, generation),
                      ("timer", proc.pid, generation))
        return remaining

    def _fire_timer(self, proc: Process, generation: int) -> None:
        signum = self.timers.should_fire(proc.pid, generation)
        if signum is not None and proc.alive:
            self.deliver_signal(proc, signum)

    # ------------------------------------------------------------------
    # process teardown
    # ------------------------------------------------------------------

    def drop_open_file(self, of: OpenFile) -> None:
        self.table._drop_open_file(of)

    def _teardown_thread(self, thread: Thread) -> None:
        thread.state = ThreadState.EXITED
        if getattr(thread, "_on_core", False):
            self.cores_busy -= 1
            thread._on_core = False
            self._pump_core_queue()
        self._release_token(thread)

    def terminate_process(self, proc: Process, status: int) -> None:
        if proc.exit_status is not None:
            return
        proc.exit_status = status
        self.obs.count(("process", "exit"))
        self.obs.record(ObsEvent(
            vts=max((t.det_clock for t in proc.threads), default=0.0),
            pid=proc.nspid, index=-1, kind=EXIT, name=proc.exe_path or "",
            detail="status=%d" % status))
        for thread in proc.threads:
            if thread.alive:
                self._teardown_thread(thread)
        for fd, of in proc.fdtable.items():
            proc.fdtable.remove(fd)
            self.drop_open_file(of)
        self.notify(proc.exit_channel)
        if proc.parent is not None and proc.parent.alive:
            self.deliver_signal(proc.parent, SIGCHLD)
        if self.tracer is not None:
            self.tracer.on_process_exit(proc)

    # ------------------------------------------------------------------
    # tracer services (the "ptrace" surface the tracer layer builds on)
    # ------------------------------------------------------------------

    def tracer_execute(self, thread: Thread, call: Syscall,
                       nonblocking: bool = True) -> Tuple[str, Any]:
        """Execute *call* on behalf of the tracer.

        Returns an outcome tag: ``("ok", value)``, ``("err", SyscallError)``,
        ``("block", channels)``, ``("sleep", seconds)``, ``("exit", None)``
        or ``("execve", ExecveReplace)``.
        """
        try:
            value = self.table.execute(thread, call)
        except WouldBlock as wb:
            if not nonblocking:
                self._park(thread, call, wb.channels)
                return ("parked", None)
            return ("block", wb.channels)
        except Sleep as s:
            return ("sleep", s.seconds)
        except SyscallError as err:
            return ("err", err)
        except ExitProcess as ex:
            self.terminate_process(thread.process, make_exit_status(ex.code))
            return ("exit", None)
        except ExitThread:
            self._thread_finished(thread, 0)
            return ("exit", None)
        except ExecveReplace as ex:
            return ("execve", ex)
        return ("ok", value)

    def release_step_token(self, thread: Thread) -> None:
        """Tracer hook: the thread's syscall would block; hand the thread
        serialization token to the next queued sibling."""
        self._release_token(thread)

    def tracer_resume(self, thread: Thread, at: float, value: Any = None,
                      exc: Optional[BaseException] = None) -> None:
        """Resume a trace-stopped thread at virtual time *at*.

        Under thread serialization, a serviced syscall is a context-switch
        point (§5.7): the resumed thread re-joins the back of its
        process's step queue and the front gets the token — a
        deterministic round-robin, because queue membership only changes
        at serviced events.
        """
        if not thread.alive:
            return
        thread.state = ThreadState.DISPATCH
        thread.current_syscall = None
        proc = thread.process
        if (self.serialize_threads and len(proc.live_threads()) > 1
                and getattr(proc, "_step_token", None) is thread):
            queue = proc.memory.setdefault("_step_queue", [])
            queue.append((thread, value, exc))
            thread.state = ThreadState.RUNNABLE
            thread.token_queued = True
            self.schedule(at, lambda: self._release_token(thread),
                          ("release_token", thread.tid))
            return
        self.schedule(at, lambda: self._step_or_wait(thread, value, exc),
                      ("step", thread.tid, value, exc))

    def tracer_execve(self, thread: Thread, ex: ExecveReplace, at: float) -> None:
        self._do_execve(thread, ex, resume_at=at)

    def find_process_by_nspid(self, nspid: int) -> Optional[Process]:
        for proc in self.processes:
            if proc.nspid == nspid:
                return proc
        return None


#: Sentinel: the instruction path suspended the thread (trap round trip).
_SUSPENDED = object()
