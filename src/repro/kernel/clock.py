"""Virtual time for the simulated machine.

The DES advances :attr:`SimClock.now` (seconds since boot).  Guest-visible
clocks derive from it:

* wall-clock time — ``boot_epoch + now`` (varies per boot → irreproducible);
* monotonic time — ``now``;
* TSC cycles — ``now * freq`` plus measurement noise (see
  :meth:`repro.cpu.instructions.Cpu.rdtsc`).
"""

from __future__ import annotations

from ..cpu.machine import HostEnvironment


class SimClock:
    """Monotonic virtual clock plus derived guest-visible clocks."""

    def __init__(self, host: HostEnvironment):
        self.host = host
        self.now = 0.0

    def advance_to(self, t: float) -> None:
        if t < self.now - 1e-12:
            raise ValueError("clock moved backwards: %r -> %r" % (self.now, t))
        self.now = max(self.now, t)

    @property
    def wall(self) -> float:
        """Current wall-clock time in epoch seconds."""
        return self.host.boot_epoch + self.now

    @property
    def monotonic(self) -> float:
        return self.now

    @property
    def cycles(self) -> int:
        """Nominal cycle count since boot (before per-read rdtsc noise)."""
        return int(self.now * self.host.machine.freq_ghz * 1e9)
