"""Error model for the simulated kernel.

The simulated syscall layer reports failures the same way Linux does: a
negative errno value.  Guest code receives these as ``SyscallError``
exceptions raised by the guest runtime helpers, while the raw syscall
dispatch layer passes errno integers around so that a tracer (DetTrace or
the record-and-replay baseline) can observe and rewrite them.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """The subset of Linux errno values used by the simulated kernel."""

    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EPIPE = 32
    ERANGE = 34
    EDEADLK = 35
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    ENODATA = 61
    ETIME = 62
    ENOTSOCK = 88
    EOPNOTSUPP = 95
    EAFNOSUPPORT = 97
    EADDRINUSE = 98
    EADDRNOTAVAIL = 99
    EISCONN = 106
    ENOTCONN = 107
    ECONNREFUSED = 111
    ETIMEDOUT = 110


#: Human-readable messages, mirroring ``strerror(3)`` for the errnos above.
_MESSAGES = {
    Errno.EPERM: "Operation not permitted",
    Errno.ENOENT: "No such file or directory",
    Errno.ESRCH: "No such process",
    Errno.EINTR: "Interrupted system call",
    Errno.EIO: "Input/output error",
    Errno.EBADF: "Bad file descriptor",
    Errno.ECHILD: "No child processes",
    Errno.EAGAIN: "Resource temporarily unavailable",
    Errno.ENOMEM: "Cannot allocate memory",
    Errno.EACCES: "Permission denied",
    Errno.EFAULT: "Bad address",
    Errno.EBUSY: "Device or resource busy",
    Errno.EEXIST: "File exists",
    Errno.ENOTDIR: "Not a directory",
    Errno.EISDIR: "Is a directory",
    Errno.EINVAL: "Invalid argument",
    Errno.ENFILE: "Too many open files in system",
    Errno.EMFILE: "Too many open files",
    Errno.ENOTTY: "Inappropriate ioctl for device",
    Errno.ENOSPC: "No space left on device",
    Errno.ESPIPE: "Illegal seek",
    Errno.EROFS: "Read-only file system",
    Errno.EPIPE: "Broken pipe",
    Errno.ERANGE: "Numerical result out of range",
    Errno.EDEADLK: "Resource deadlock avoided",
    Errno.ENOSYS: "Function not implemented",
    Errno.ENOTEMPTY: "Directory not empty",
    Errno.ELOOP: "Too many levels of symbolic links",
    Errno.ENODATA: "No data available",
    Errno.ETIME: "Timer expired",
    Errno.ENOTSOCK: "Socket operation on non-socket",
    Errno.EOPNOTSUPP: "Operation not supported",
    Errno.EAFNOSUPPORT: "Address family not supported by protocol",
    Errno.EADDRINUSE: "Address already in use",
    Errno.EADDRNOTAVAIL: "Cannot assign requested address",
    Errno.EISCONN: "Transport endpoint is already connected",
    Errno.ENOTCONN: "Transport endpoint is not connected",
    Errno.ECONNREFUSED: "Connection refused",
    Errno.ETIMEDOUT: "Connection timed out",
}


def strerror(errno: int) -> str:
    """Return the message for *errno*, like ``strerror(3)``."""
    try:
        return _MESSAGES[Errno(errno)]
    except ValueError:
        return "Unknown error %d" % errno


class SyscallError(Exception):
    """Raised into guest code when a syscall fails.

    Mirrors the libc convention of raising/returning ``-errno``; guest
    runtime helpers convert negative syscall results into this exception.
    """

    def __init__(self, errno: int, syscall: str = "", detail: str = ""):
        self.errno = int(errno)
        self.syscall = syscall
        msg = "%s: %s" % (syscall or "syscall", strerror(errno))
        if detail:
            msg += " (%s)" % detail
        super().__init__(msg)


class KernelPanic(Exception):
    """An internal invariant of the simulated kernel was violated."""


class SimTimeout(Exception):
    """The simulation exceeded its virtual-time deadline."""

    def __init__(self, deadline: float):
        self.deadline = deadline
        super().__init__("virtual deadline %gs exceeded" % deadline)


class DeadlockError(Exception):
    """No runnable work remains but live threads exist."""


class GuestCrash(Exception):
    """A guest process performed an unrecoverable illegal action.

    Corresponds to a fatal signal (SIGSEGV/SIGILL/...) terminating the
    process.  The DES loop converts this into a process exit with the
    conventional ``128 + signum`` status rather than unwinding the world.
    """

    def __init__(self, signum: int, reason: str = ""):
        self.signum = signum
        self.reason = reason
        super().__init__("fatal signal %d%s" % (signum, (": " + reason) if reason else ""))
