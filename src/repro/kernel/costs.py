"""Virtual-time cost model.

All durations are in seconds of virtual time on the reference 2.2 GHz
machine.  The tracer-side constants are what make DetTrace's overhead
proportional to syscall rate (paper §7.4, Figure 5): every ptrace stop
pays context switches into the single-threaded tracer.

The constants were calibrated so that the paper's headline shapes emerge:
IO-intensive builds at 5–25k syscalls/sec land around 2–10× slowdown
(aggregate ≈3.5×), while compute-bound workloads stay under a few percent.
"""

from __future__ import annotations

#: Kernel-side service time for a syscall, by name (seconds).
SYSCALL_BASE_COST = 1.0e-6
SYSCALL_COSTS = {
    "getpid": 0.2e-6,
    "getppid": 0.2e-6,
    "getuid": 0.2e-6,
    "getgid": 0.2e-6,
    "getcwd": 0.4e-6,
    "time": 0.3e-6,
    "gettimeofday": 0.3e-6,
    "clock_gettime": 0.3e-6,
    "read": 0.6e-6,
    "write": 0.6e-6,
    "open": 1.5e-6,
    "close": 0.5e-6,
    "stat": 1.2e-6,
    "lstat": 1.2e-6,
    "fstat": 0.8e-6,
    "getdents": 2.0e-6,
    "spawn_process": 80e-6,
    "spawn_thread": 20e-6,
    "execve": 150e-6,
    "wait4": 1.0e-6,
    "pipe": 1.5e-6,
    "futex": 0.8e-6,
}

#: Sequential file IO bandwidth (bytes/second) charged on top of the base
#: cost for read/write payloads.
IO_BANDWIDTH = 2.0e9

#: One ptrace stop: two context switches into the tracer and back.
#: Plain ptrace pays this twice per syscall (entry + exit), which is what
#: the seccomp-combined event saves (§5.11).
PTRACE_STOP_COST = 6.0e-6

#: With seccomp on kernels >= 4.8, entry+exit collapse into one event.
SECCOMP_COMBINED_STOP_COST = 9.0e-6
#: Kernels < 4.8 deliver separate seccomp and ptrace events (§5.11).
LEGACY_DOUBLE_STOP_COST = 22.0e-6

#: Tracer-side handler work per intercepted syscall (determinization
#: logic, bookkeeping).
TRACER_HANDLER_COST = 4.0e-6

#: Reading or writing one block of tracee memory (PTRACE_PEEKDATA analog).
TRACER_MEMORY_OP_COST = 0.8e-6

#: Extra cost when the tracer converts a blocking call into a
#: non-blocking probe and must later replay it (§5.6.1).
TRACER_REPLAY_COST = 8.0e-6

#: Scheduling decision in the reproducible scheduler.
TRACER_SCHED_COST = 1.0e-6

#: Extra latency the *tracee* observes between the tracer finishing its
#: handling and the tracee running again (context switch back plus run
#: queue delay).  This time does NOT occupy the tracer, which is why a
#: single traced process suffers more slowdown than the tracer's
#: serialized occupancy alone would predict, while many processes can
#: overlap their wakeup latencies (paper §7.5: raxml's 1-process 3.4x vs
#: its 16-process plateau).
TRACEE_WAKEUP_LATENCY = 65.0e-6

#: Trapped instruction (rdtsc/cpuid) emulation round trip.
INSTR_TRAP_COST = 3.0e-6

#: Native cost of an untrapped instruction is treated as free; vDSO calls
#: cost a library call.
VDSO_CALL_COST = 0.05e-6

#: Multiplicative scheduler jitter applied to compute segments natively.
COMPUTE_JITTER_FRAC = 0.03

#: Deterministic logical-clock increment per syscall (see
#: repro.core.scheduler): makes a thread's next stop strictly later than
#: its current bound, which the reproducible order relies on.
SYSCALL_TICK = 5.0e-6

#: Tracer-side cost of an execve event: vDSO rewrite, scratch-page
#: allocation, binary inspection (SS5.3, SS5.10).
EXECVE_TRACER_COST = 250.0e-6
