"""Operations guest programs yield to the simulated kernel.

A guest program is a Python generator.  Each ``yield`` hands the kernel an
operation; the value the kernel sends back is the operation's result.  The
four operation kinds map onto the two interfaces the paper analyzes (§4):
the Linux syscall API (:class:`Syscall`, :class:`VdsoCall`) and the x86-64
ISA (:class:`Instr`, :class:`Compute`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass
class Compute:
    """Burn CPU: *work* seconds at the reference 2.2 GHz machine.

    Actual duration scales with the machine's clock rate and carries a
    small host-specific jitter, so racing threads interleave differently
    across runs — the scheduler-nondeterminism arrow of Figure 1.
    """

    work: float


@dataclasses.dataclass
class Syscall:
    """A system call request: always visible to a ptrace tracer."""

    name: str
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def replaced(self, name: Optional[str] = None, **arg_updates) -> "Syscall":
        """A copy with the given name/argument rewrites (tracer use)."""
        new_args = dict(self.args)
        new_args.update(arg_updates)
        return Syscall(name if name is not None else self.name, new_args)


@dataclasses.dataclass
class Instr:
    """A raw CPU instruction (rdtsc, rdrand, cpuid, xbegin, ...).

    Invisible to ptrace; only trappable where the hardware allows (§5.8).
    """

    name: str


@dataclasses.dataclass
class VdsoCall:
    """A timing call through the vDSO fast path (§5.3).

    Implemented as a library call, so ptrace does *not* see it unless the
    tracer has replaced the process's vDSO — which is precisely what
    DetTrace does after each execve.
    """

    name: str
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class VvarRead:
    """A direct load from the vvar page — the raw nondeterministic data
    vDSO timing calls use.  Natively it returns clock bits without any
    syscall; DetTrace makes the page unreadable, so the access faults
    (reproducibly) instead of leaking time (§5.3).
    """


#: Marker object a tracer returns to force the syscall to be skipped and a
#: fixed result injected (the time-as-NOP trick from §5.10).
@dataclasses.dataclass
class SkipSyscall:
    result: Any


#: Marker a tracer returns from an exit stop to rerun the (possibly
#: modified) syscall — the PC-reset retry trick from §5.10 / Figure 4.
@dataclasses.dataclass
class RerunSyscall:
    call: Syscall
