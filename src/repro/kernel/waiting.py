"""Wait channels and the would-block protocol.

A blocking syscall is implemented as a *retryable probe*: the syscall body
either completes, or raises :class:`WouldBlock` naming the channels whose
notification could change the answer.  The kernel then parks the thread
and re-executes the whole syscall when any named channel fires.

This retry structure is exactly what DetTrace needs (paper §5.6.1): the
tracer converts blocking calls into non-blocking probes (``WNOHANG``
style), observes the would-block outcome, and moves the process to its
Blocked queue to be retried later — so the native kernel and the
determinized container share one code path.
"""

from __future__ import annotations

from typing import Iterable, List


class Channel:
    """Something a thread can wait on (pipe space, child exit, futex, ...)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return "Channel(%r)" % self.name


class WouldBlock(Exception):
    """The syscall cannot complete now; retry when a channel fires."""

    def __init__(self, channels: Iterable[Channel]):
        self.channels: List[Channel] = list(channels)
        super().__init__("would block on %s" % ", ".join(c.name for c in self.channels))
