"""Pipes: the canonical source of partial reads and writes (paper §5.5).

The paper observes that ``read``/``write`` "may read/write arbitrarily
fewer bytes than requested ... they do regularly arise when accessing
pipes."  The simulated pipe reproduces that: a reader gets whatever is
buffered (possibly less than requested), and a writer fills whatever space
remains (possibly less than offered).  DetTrace's io handler then retries
partial operations until the request is satisfied.
"""

from __future__ import annotations

from .errors import Errno, SyscallError
from .waiting import Channel, WouldBlock

PIPE_CAPACITY = 65536


class Pipe:
    """A unidirectional byte channel with a bounded kernel buffer."""

    _counter = 0

    def __init__(self, capacity: int = PIPE_CAPACITY):
        Pipe._counter += 1
        self.pipe_id = Pipe._counter
        self.capacity = capacity
        self.buffer = bytearray()
        self.readers = 0
        self.writers = 0
        self.readable = Channel("pipe%d.readable" % self.pipe_id)
        self.writable = Channel("pipe%d.writable" % self.pipe_id)
        #: Fired when an end is first opened (FIFO rendezvous).
        self.reader_arrived = Channel("pipe%d.reader_arrived" % self.pipe_id)
        self.writer_arrived = Channel("pipe%d.writer_arrived" % self.pipe_id)
        #: FIFO rendezvous state: a read at EOF distinguishes "writers
        #: closed" from "no writer has shown up yet", and a write without
        #: readers distinguishes EPIPE from "reader still coming".
        self.ever_had_reader = False
        self.ever_had_writer = False

    # -- endpoint refcounting -----------------------------------------------

    def open_reader(self) -> None:
        self.readers += 1
        self.ever_had_reader = True

    def open_writer(self) -> None:
        self.writers += 1
        self.ever_had_writer = True

    def close_reader(self) -> "Channel":
        """Close one read end; returns the channel writers must be woken on."""
        self.readers -= 1
        return self.writable

    def close_writer(self) -> "Channel":
        """Close one write end; returns the channel readers must be woken on."""
        self.writers -= 1
        return self.readable

    # -- data transfer --------------------------------------------------------

    def read(self, n: int) -> bytes:
        """Read up to *n* bytes.

        Returns ``b""`` at EOF (no writers, empty buffer); raises
        :class:`WouldBlock` when empty but writers remain; otherwise
        returns *whatever is available*, which is the partial-read hazard.
        """
        if n <= 0:
            return b""
        if not self.buffer:
            if self.writers <= 0:
                if self.ever_had_writer:
                    return b""  # true EOF: all writers closed
                # FIFO rendezvous: the writer has not opened yet.
                raise WouldBlock([self.readable, self.writer_arrived])
            raise WouldBlock([self.readable])
        take = min(n, len(self.buffer))
        data = bytes(self.buffer[:take])
        del self.buffer[:take]
        return data

    def write(self, data: bytes) -> int:
        """Write up to ``len(data)`` bytes; returns bytes accepted.

        Raises EPIPE when no readers remain, and :class:`WouldBlock` when
        the buffer is full.  A partially-full buffer produces a partial
        write.
        """
        if self.readers <= 0:
            if self.ever_had_reader:
                raise SyscallError(Errno.EPIPE, "write")
            # FIFO rendezvous: the reader has not opened yet.
            raise WouldBlock([self.reader_arrived])
        if not data:
            return 0
        space = self.capacity - len(self.buffer)
        if space <= 0:
            raise WouldBlock([self.writable])
        accepted = min(space, len(data))
        self.buffer.extend(data[:accepted])
        return accepted

    @property
    def bytes_buffered(self) -> int:
        return len(self.buffer)
