"""In-container stream sockets: AF_UNIX and loopback AF_INET (§5.9).

The paper leaves networking as future work but explicitly carves out
"limited forms of socket communication, e.g., as interprocess
communication within our container, that can be rendered reproducible".
This module is that carve-out: a socket layer whose every observable —
ephemeral ports, accept order, blocking points — is a pure function of
guest execution, never of host state.

* A **connection** is a crossed pair of :class:`~repro.kernel.pipes.
  Pipe` objects (client→server and server→client), exactly the
  socketpair model, so buffering, partial transfers, EOF and EPIPE all
  reuse the pipe semantics the tracer already determinizes.
* A **listener** owns a bounded FIFO of fully-established pipe pairs
  plus two :class:`~repro.kernel.waiting.Channel` objects wiring accept
  and connect into the scheduler's park/retry protocol: ``accept``
  blocks on ``accept_ready`` while the queue is empty, ``connect``
  blocks on ``accept_slot`` while the backlog is full — the same
  virtual-time blocking discipline as a pipe read.
* **Ephemeral ports** come from a monotonic per-container counter
  starting at :data:`EPHEMERAL_BASE`; the host's port namespace is
  never consulted.
* The registry stamps a **version** (dirty epoch) on every mutation so
  the checkpoint layer's section-change detection is O(1) and delta
  snapshots stay O(changed).

Determinization note: none of the syscalls built on this module are in
the tracer's naturally-reproducible set, so every socket operation is
intercepted and serialized by the deterministic scheduler — which is
the whole reproducibility argument: in-container rendezvous under a
deterministic total order has no racing observable left.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import Errno, SyscallError
from .pipes import Pipe
from .waiting import Channel

#: Address families (the two the container can render reproducible).
AF_UNIX = 1
AF_INET = 2
#: The only supported socket type: connection-oriented byte streams.
SOCK_STREAM = 1

#: shutdown(2) directions.
SHUT_RD = 0
SHUT_WR = 1
SHUT_RDWR = 2

#: First deterministic ephemeral port (Linux's default range floor).
EPHEMERAL_BASE = 32768
#: Backlog bound (Linux's net.core.somaxconn default).
SOMAXCONN = 128

#: Loopback host spellings accepted for in-container AF_INET addresses.
LOOPBACK_HOSTS = ("127.0.0.1", "localhost")


def is_loopback_address(address: str) -> bool:
    """True when *address* names the container's own loopback interface."""
    host = address.rsplit(":", 1)[0] if ":" in address else address
    return host in LOOPBACK_HOSTS


def is_unix_address(address: str) -> bool:
    """AF_UNIX addresses are filesystem paths."""
    return address.startswith("/")


class Listener:
    """One listening socket: a bounded queue of established connections.

    ``pending`` holds ``(to_server, to_client, peer_address)`` triples —
    the connection's two pipes are created (and both endpoints opened)
    at *connect* time, so a client may write immediately after connect
    returns, before the server ever accepts: real TCP backlog
    semantics, and the property that makes a mid-connection checkpoint
    capture the queue as plain pipe state.
    """

    def __init__(self, family: int, address: str, backlog: int):
        self.family = family
        self.address = address
        self.backlog = max(1, min(int(backlog), SOMAXCONN))
        self.pending: List[Tuple[Pipe, Pipe, str]] = []
        self.accept_ready = Channel("sock(%s).accept_ready" % address)
        self.accept_slot = Channel("sock(%s).accept_slot" % address)

    @property
    def full(self) -> bool:
        return len(self.pending) >= self.backlog


class SocketRegistry:
    """Per-container socket namespace: bound addresses, listeners and
    the deterministic ephemeral-port counter."""

    def __init__(self):
        #: (family, address) -> Listener for every listening socket.
        self.listeners: Dict[Tuple[int, str], Listener] = {}
        #: Addresses claimed by bind (listening or not): EADDRINUSE set.
        self.bound: Dict[Tuple[int, str], bool] = {}
        self.port_next = EPHEMERAL_BASE
        #: Dirty epoch: bumped on every mutation.  The checkpoint layer
        #: hashes ``"sockets-version-%d"`` instead of pickling the
        #: registry, so unchanged-section detection is O(1).
        self.version = 0

    # -- mutation helpers (every write path bumps the epoch) -----------

    def touch(self) -> None:
        self.version += 1

    def alloc_port(self) -> int:
        """Next deterministic ephemeral port (monotonic, never reused —
        mirroring how fd/pid namespaces in this kernel trade reuse for
        run-stable identity)."""
        port = self.port_next
        self.port_next += 1
        self.touch()
        return port

    def bind(self, family: int, address: str) -> str:
        """Claim *address*; returns the (possibly port-filled) address."""
        if family == AF_INET and address.endswith(":0"):
            address = "%s:%d" % (address.rsplit(":", 1)[0],
                                 self.alloc_port())
        key = (family, address)
        if key in self.bound:
            raise SyscallError(Errno.EADDRINUSE, "bind", address)
        self.bound[key] = True
        self.touch()
        return address

    def release(self, family: int, address: str) -> None:
        self.bound.pop((family, address), None)
        self.listeners.pop((family, address), None)
        self.touch()

    def listen(self, family: int, address: str, backlog: int) -> Listener:
        key = (family, address)
        listener = self.listeners.get(key)
        if listener is None:
            listener = Listener(family, address, backlog)
            self.listeners[key] = listener
        else:
            listener.backlog = max(1, min(int(backlog), SOMAXCONN))
        self.touch()
        return listener

    def lookup(self, family: int, address: str) -> Optional[Listener]:
        return self.listeners.get((family, address))
