"""Mutation epochs: the dirty-tracking clock behind incremental snapshots.

Every kernel object that the checkpoint plane captures carries a
``dirty_epoch`` stamp.  A :class:`MutationClock` hands out monotonically
increasing ticks; mutating an object stamps it with the current tick and
registers it in the owner's dirty set.  At a checkpoint barrier the
snapshot layer asks "what moved since the last barrier?" and enumerates
exactly the stamped objects — O(changed), never O(state).

The clock is deliberately *per owner* (one per :class:`Filesystem`), not
process-global: the diagnosis plane routinely runs two kernels side by
side in one interpreter, and their dirty sets must not interleave.

Invariants the checkpoint plane relies on:

* Stamps only ever grow; ``advance()`` at a barrier fences the epoch so
  post-barrier mutations are distinguishable from pre-barrier ones.
* Stamping is *observation-free*: nothing in the kernel ever branches on
  a ``dirty_epoch``, so tracking cannot perturb guest-visible behaviour
  (the resume-identity gate depends on this).
"""

from __future__ import annotations


class MutationClock:
    """A monotonic tick source for dirty-epoch stamps."""

    __slots__ = ("_tick",)

    def __init__(self) -> None:
        self._tick = 1

    @property
    def tick(self) -> int:
        """The current epoch: stamps handed out until the next fence."""
        return self._tick

    def advance(self) -> int:
        """Fence the epoch (called at checkpoint barriers); returns the
        epoch that just closed."""
        closed = self._tick
        self._tick += 1
        return closed
