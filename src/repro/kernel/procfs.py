"""/proc: kernel state presented as files.

Real builds read /proc constantly (``nproc`` parses /proc/cpuinfo,
uptime daemons read /proc/uptime, configure scripts sniff /proc/version)
— and every one of those files is a direct window onto the host.  The
nodes here are device-backed: content is generated at read time from the
live kernel state, exactly like the real procfs.

DetTrace's own implementation *uses* /proc (finding the real inode of a
freshly-opened fd, §5.5); the simulated tracer reads the kernel
structures directly, but the guest-visible files below still need
masking, which the read handler does by path (see
``repro.core.handlers.io``).
"""

from __future__ import annotations

from typing import Callable


def _cpuinfo(kernel) -> bytes:
    machine = kernel.host.machine
    blocks = []
    for core in range(machine.cores):
        blocks.append(
            "processor\t: %d\n"
            "vendor_id\t: %s\n"
            "cpu family\t: %d\n"
            "model\t\t: %d\n"
            "model name\t: %s\n"
            "cpu MHz\t\t: %.3f\n"
            "flags\t\t: %s\n"
            % (core, machine.cpu_vendor, machine.cpu_family,
               machine.cpu_model, machine.cpu_brand,
               machine.freq_ghz * 1000.0, " ".join(machine.features)))
    return "\n".join(blocks).encode()


def _meminfo(kernel) -> bytes:
    total_kb = kernel.host.machine.total_ram_gb << 20
    free_kb = total_kb - int(kernel.clock.now * 1000) % (total_kb // 2)
    return (b"MemTotal:       %d kB\nMemFree:        %d kB\n"
            % (total_kb, free_kb))


def _uptime(kernel) -> bytes:
    return b"%.2f %.2f\n" % (kernel.clock.now, kernel.clock.now * 0.9)


def _version(kernel) -> bytes:
    machine = kernel.host.machine
    return (b"Linux version %d.%d.0-generic (%s)\n"
            % (machine.kernel_version[0], machine.kernel_version[1],
               machine.os_name.encode()))


def _loadavg(kernel) -> bytes:
    load = kernel.cores_busy + kernel.host.sched_jitter(0.5)
    return b"%.2f %.2f %.2f %d/%d 1\n" % (
        load, load * 0.9, load * 0.8,
        kernel.cores_busy, len(kernel.live_processes()))


#: path under /proc -> generator over the kernel.
PROC_FILES = {
    "cpuinfo": _cpuinfo,
    "meminfo": _meminfo,
    "uptime": _uptime,
    "version": _version,
    "loadavg": _loadavg,
}


def install_procfs(kernel) -> None:
    """Mount /proc on the kernel's filesystem."""
    fs = kernel.fs
    proc_dir = fs.mkdirs("/proc", now=kernel.host.boot_epoch)

    def reader_for(generate: Callable) -> Callable[[int], bytes]:
        offset = {"pos": 0}

        def read(count: int) -> bytes:
            # procfs regenerates on each open; our device read hook has
            # no open notion, so regenerate when reading from the top.
            content = generate(kernel)
            data = content[offset["pos"]:offset["pos"] + count]
            offset["pos"] = 0 if not data else offset["pos"] + len(data)
            return data

        return read

    for name, generate in PROC_FILES.items():
        if proc_dir.lookup(name) is None:
            fs.create_device(proc_dir, name,
                             dev_read=reader_for(generate),
                             mode=0o444, now=kernel.host.boot_epoch)


#: What the files report inside a DetTrace container (§5.8's canonical
#: uniprocessor, applied to procfs).
CANONICAL_PROC_CONTENT = {
    "/proc/cpuinfo": (
        b"processor\t: 0\n"
        b"vendor_id\t: GenuineIntel\n"
        b"cpu family\t: 6\n"
        b"model\t\t: 0\n"
        b"model name\t: DetTrace Virtual CPU @ 1.00GHz\n"
        b"cpu MHz\t\t: 1000.000\n"
        b"flags\t\t: avx\n"),
    "/proc/meminfo": (b"MemTotal:       4194304 kB\n"
                      b"MemFree:        2097152 kB\n"),
    "/proc/uptime": b"1000.00 900.00\n",
    "/proc/version": b"Linux version 4.0.0-generic (dettrace)\n",
    "/proc/loadavg": b"0.00 0.00 0.00 1/1 1\n",
}
