"""Signal dispositions and delivery policy (paper §5.4 substrate).

The kernel consults :func:`classify` when a signal arrives: run a
registered handler, ignore it, or terminate the process.  DetTrace's
reproducibility story for signals lives in the tracer (instant timers,
self-signals only); this module is purely the native semantics.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Union

from .types import (
    FATAL_SIGNALS,
    PRECISE_EXCEPTION_SIGNALS,
    SIGCHLD,
    SIGVTALRM,
    SIGPROF,
)

#: Signals whose default disposition is "ignore".
DEFAULT_IGNORED = frozenset([SIGCHLD])

SignalAction = Union[str, Callable]


class Disposition(enum.Enum):
    HANDLE = "handle"       # run the registered handler generator
    IGNORE = "ignore"
    TERMINATE = "terminate"


def classify(handlers: Dict[int, SignalAction], signum: int) -> Disposition:
    """What delivering *signum* should do, given the process's table."""
    action = handlers.get(signum, "default")
    if action == "ignore":
        return Disposition.IGNORE
    if callable(action):
        return Disposition.HANDLE
    # default disposition
    if signum in DEFAULT_IGNORED:
        return Disposition.IGNORE
    if signum in FATAL_SIGNALS or signum in (SIGVTALRM, SIGPROF):
        return Disposition.TERMINATE
    return Disposition.TERMINATE


def is_precise_exception(signum: int) -> bool:
    """SIGSEGV/SIGILL/SIGABRT halt the program at a well-defined point
    and are therefore naturally reproducible (§5.4)."""
    return signum in PRECISE_EXCEPTION_SIGNALS
