"""The simulated Linux system call table.

Each ``sys_<name>`` method implements one syscall with native — i.e.
*irreproducible* — semantics.  Determinization happens strictly in the
tracer layer (:mod:`repro.core.handlers`), never here, mirroring the
paper's architecture where the kernel is completely unmodified (Figure 2).

Control flow out of a syscall body:

* return a value — success;
* raise :class:`~repro.kernel.errors.SyscallError` — failure (``-errno``);
* raise :class:`~repro.kernel.waiting.WouldBlock` — park/retry protocol;
* raise :class:`Sleep` — timed block (nanosleep);
* raise :class:`ExitProcess` / :class:`ExitThread` — termination;
* raise :class:`ExecveReplace` — replace the process image.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .errors import Errno, SyscallError
from .fds import FdKind, FDTable, OpenFile
from .filesystem import normalize
from .inode import Inode
from .ops import Syscall
from .pipes import Pipe
from .process import Process, Thread
from . import sockets as socklib
from .types import (
    CLOCK_MONOTONIC,
    StatfsResult,
    TimesResult,
    CLOCK_REALTIME,
    FUTEX_WAIT,
    FUTEX_WAKE,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_NONBLOCK,
    O_TRUNC,
    O_WRONLY,
    ACCMODE_MASK,
    O_RDONLY,
    O_RDWR,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    SIGALRM,
    SIGCHLD,
    SIGPIPE,
    SysInfo,
    UtsName,
    WaitResult,
    WNOHANG,
    FileKind,
)
from .waiting import WouldBlock

#: fcntl(F_SETFL) may change only the *file status* flags; access mode
#: (O_RDONLY/O_WRONLY/O_RDWR) and creation flags (O_CREAT/O_EXCL/O_TRUNC)
#: are fixed at open time and must be masked out of the argument (POSIX).
SETFL_MASK = O_APPEND | O_NONBLOCK


class Sleep(Exception):
    """nanosleep: park the thread for a fixed virtual duration."""

    def __init__(self, seconds: float):
        self.seconds = max(0.0, float(seconds))
        super().__init__("sleep %gs" % seconds)


class ExitProcess(Exception):
    def __init__(self, code: int):
        self.code = int(code)
        super().__init__("exit(%d)" % code)


class ExitThread(Exception):
    pass


class ExecveReplace(Exception):
    """Replace the calling process's image with a new program."""

    def __init__(self, path: str, argv: List[str], env: Optional[Dict[str, str]]):
        self.path = path
        self.argv = argv
        self.env = env
        super().__init__("execve %s" % path)


class _LoopbackSocket:
    """A trivially fake network peer: answers with host-tainted data.

    Exists so that packages using sockets *build* natively (and embed
    irreproducible network answers in their artifacts); DetTrace refuses
    the socket syscall instead (§5.9).
    """

    def __init__(self, kernel):
        self._kernel = kernel
        self._pending: List[bytes] = []

    def write(self, data: bytes) -> int:
        self._pending.append(data)
        return len(data)

    def read(self, n: int) -> bytes:
        sent = b"".join(self._pending)
        self._pending = []
        reply = b"pong %.6f len=%d" % (self._kernel.clock.wall, len(sent))
        return reply[:n]


class SyscallTable:
    """Dispatches syscalls against one simulated kernel instance."""

    def __init__(self, kernel):
        self.kernel = kernel

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, thread: Thread, call: Syscall) -> Any:
        faults = self.kernel.faults
        if faults is not None:
            # Apply any fault armed at dispatch time for this instance:
            # may raise the injected errno or rewrite the call into a
            # short transfer.  Probes/retries of the same instance find
            # the slot cleared and run unfaulted.
            call = faults.consume(thread, call)
        method = getattr(self, "sys_" + call.name, None)
        if method is None:
            raise SyscallError(Errno.ENOSYS, call.name)
        return method(thread, **call.args)

    # -- small helpers ---------------------------------------------------

    @property
    def _fs(self):
        return self.kernel.fs

    @property
    def _now(self) -> float:
        return self.kernel.clock.wall

    def _abs_path(self, proc: Process, path: str) -> str:
        if path.startswith("/"):
            return normalize(path)
        return normalize(proc.cwd_path + "/" + path)

    def _resolve(self, proc: Process, path: str, follow_last: bool = True) -> Inode:
        return self._fs.resolve(proc.root, proc.cwd, path, follow_last=follow_last)

    def _resolve_parent(self, proc: Process, path: str):
        return self._fs.resolve_parent(proc.root, proc.cwd, path)

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def sys_open(self, t: Thread, path: str, flags: int = O_RDONLY, mode: int = 0o644):
        proc = t.process
        abspath = self._abs_path(proc, path)
        node: Optional[Inode]
        try:
            node = self._resolve(proc, path)
        except SyscallError as err:
            if err.errno != Errno.ENOENT or not (flags & O_CREAT):
                raise
            node = None
        if node is not None and (flags & O_CREAT) and (flags & O_EXCL):
            raise SyscallError(Errno.EEXIST, "open", path)
        if node is None:
            parent, name = self._resolve_parent(proc, path)
            node = self._fs.create_file(parent, name,
                                        mode=mode & ~proc.umask & 0o7777,
                                        uid=proc.uid, gid=proc.gid,
                                        now=self._now)
        if node.kind is FileKind.DIRECTORY:
            if (flags & ACCMODE_MASK) != O_RDONLY:
                raise SyscallError(Errno.EISDIR, "open", path)
            of = OpenFile(kind=FdKind.DIRECTORY, flags=flags, path=abspath, inode=node)
        elif node.kind is FileKind.CHARDEV:
            of = OpenFile(kind=FdKind.DEVICE, flags=flags, path=abspath, inode=node)
        elif node.kind is FileKind.FIFO:
            # The open registers the end immediately; the rendezvous with
            # the other end happens at the first read/write (pipes.py),
            # which the retryable-probe protocol handles both natively
            # and through DetTrace's Blocked queue.
            accmode = flags & ACCMODE_MASK
            fifo = node.fifo_pipe
            if accmode == O_RDONLY:
                fifo.open_reader()
                self.kernel.notify(fifo.reader_arrived)
                of = OpenFile(kind=FdKind.PIPE_READ, flags=flags, path=abspath,
                              inode=node, pipe=fifo)
            else:
                fifo.open_writer()
                self.kernel.notify(fifo.writer_arrived)
                of = OpenFile(kind=FdKind.PIPE_WRITE, flags=flags, path=abspath,
                              inode=node, pipe=fifo)
        elif node.kind is FileKind.REGULAR:
            if flags & O_TRUNC and (flags & ACCMODE_MASK) in (O_WRONLY, O_RDWR):
                node.data = bytearray()
                node.mtime = node.ctime = self._now
                self._fs.note(node)
            of = OpenFile(kind=FdKind.FILE, flags=flags, path=abspath, inode=node)
        else:
            raise SyscallError(Errno.EINVAL, "open", path)
        if of.inode is not None:
            # Keep the inode number alive until the last close even if
            # every name is unlinked meanwhile (POSIX orphan semantics).
            self._fs.inode_opened(of.inode)
            of.counts_inode = True
        return proc.fdtable.install(of)

    def sys_close(self, t: Thread, fd: int):
        of = t.process.fdtable.remove(fd)
        self._drop_open_file(of)
        return 0

    def _drop_open_file(self, of: OpenFile) -> None:
        of.refcount -= 1
        if of.refcount > 0:
            return
        if of.counts_inode and of.inode is not None:
            self._fs.inode_closed(of.inode)
        if of.kind is FdKind.PIPE_READ and of.pipe is not None:
            self.kernel.notify(of.pipe.close_reader())
        elif of.kind is FdKind.PIPE_WRITE and of.pipe is not None:
            self.kernel.notify(of.pipe.close_writer())
        elif of.kind in (FdKind.SOCKETPAIR, FdKind.SOCKET):
            listener = of.listener
            if listener is not None:
                # Closing a listener refuses every queued-but-unaccepted
                # connection: the client sees EOF on read and EPIPE on
                # the next write, like a RST-free orderly close.
                for to_server, to_client, _peer in listener.pending:
                    self.kernel.notify(to_server.close_reader())
                    self.kernel.notify(to_client.close_writer())
                listener.pending.clear()
                # Wake connecters parked on a full backlog; their retry
                # finds no listener and fails with ECONNREFUSED.
                self.kernel.notify(listener.accept_slot)
                self.kernel.sockets.release(of.sock_family, of.sock_local)
                of.listener = None
            elif of.sock_bound:
                self.kernel.sockets.release(of.sock_family, of.sock_local)
            # shutdown(2) already closed a direction: don't double-close.
            if of.pipe is not None and not of.shut_rd:
                self.kernel.notify(of.pipe.close_reader())
            peer = getattr(of, "peer_pipe", None)
            if peer is not None and not of.shut_wr:
                self.kernel.notify(peer.close_writer())

    def _broken_pipe(self, t: Thread, name: str) -> None:
        """Writing with no reader: POSIX delivers SIGPIPE *and* fails the
        write with EPIPE.  The signal honors the writer's sigmask here;
        ``deliver_signal``'s disposition logic honors SIG_IGN/handlers.
        The default disposition terminates the process — which is why
        ``Errno.EPIPE`` alone (the pre-fix behaviour) was a conformance
        bug: guests that never install a handler survived writes that
        must kill them."""
        proc = t.process
        if SIGPIPE not in proc.memory.get("_sigmask", ()):
            self.kernel.deliver_signal(proc, SIGPIPE)
        raise SyscallError(Errno.EPIPE, name)

    def _pipe_write(self, t: Thread, pipe: Pipe, data: bytes, name: str) -> int:
        try:
            n = pipe.write(data)
        except SyscallError as err:
            if err.errno == Errno.EPIPE:
                self._broken_pipe(t, name)
            raise
        if n:
            self.kernel.notify(pipe.readable)
        self.kernel.charge_io(t, n)
        return n

    def sys_read(self, t: Thread, fd: int, count: int):
        of = t.process.fdtable.get(fd)
        if of.kind is FdKind.FILE:
            node = of.inode
            data = bytes(node.data[of.offset:of.offset + count])
            of.offset += len(data)
            node.atime = self._now
            self._fs.note(node)
            self.kernel.charge_io(t, len(data))
            return data
        if of.kind is FdKind.DEVICE:
            if of.inode is not None and of.inode.dev_read is not None:
                # Device reads advance internal cursors (procfs position),
                # which the snapshot layer captures off the inode.
                self._fs.note(of.inode)
                return of.inode.dev_read(count)
            sock = getattr(of, "socket", None)
            if sock is not None:
                return sock.read(count)
            return b""
        if of.kind is FdKind.PIPE_READ:
            data = of.pipe.read(count)
            if data:
                self.kernel.notify(of.pipe.writable)
            self.kernel.charge_io(t, len(data))
            return data
        if of.kind is FdKind.SOCKETPAIR:
            if of.shut_rd:
                return b""               # SHUT_RD: immediate EOF
            data = of.pipe.read(count)   # our receive direction
            if data:
                self.kernel.notify(of.pipe.writable)
            self.kernel.charge_io(t, len(data))
            return data
        if of.kind is FdKind.SOCKET:
            sock = getattr(of, "socket", None)
            if sock is not None:         # external fake peer (§5.9)
                return sock.read(count)
            if of.shut_rd:
                return b""               # SHUT_RD: immediate EOF
            if of.pipe is None:
                raise SyscallError(Errno.ENOTCONN, "read")
            data = of.pipe.read(count)
            if data:
                self.kernel.notify(of.pipe.writable)
            self.kernel.charge_io(t, len(data))
            return data
        if of.kind is FdKind.DIRECTORY:
            raise SyscallError(Errno.EISDIR, "read")
        raise SyscallError(Errno.EBADF, "read")

    def sys_write(self, t: Thread, fd: int, data: bytes):
        of = t.process.fdtable.get(fd)
        if isinstance(data, str):
            data = data.encode()
        if of.kind is FdKind.FILE:
            node = of.inode
            if of.flags & O_APPEND:
                of.offset = len(node.data)
            end = of.offset + len(data)
            if end > len(node.data):
                self._fs.charge_disk(end - len(node.data))
                node.data.extend(b"\x00" * (end - len(node.data)))
            node.data[of.offset:end] = data
            of.offset = end
            node.mtime = node.ctime = self._now
            self._fs.note(node)
            self.kernel.charge_io(t, len(data))
            return len(data)
        if of.kind is FdKind.DEVICE:
            if of.inode is not None and of.inode.dev_write is not None:
                self._fs.note(of.inode)
                return of.inode.dev_write(data)
            sock = getattr(of, "socket", None)
            if sock is not None:
                return sock.write(data)
            return len(data)
        if of.kind is FdKind.PIPE_WRITE:
            return self._pipe_write(t, of.pipe, data, "write")
        if of.kind is FdKind.SOCKETPAIR:
            if of.shut_wr:
                self._broken_pipe(t, "write")
            return self._pipe_write(t, of.peer_pipe, data, "write")
        if of.kind is FdKind.SOCKET:
            sock = getattr(of, "socket", None)
            if sock is not None:         # external fake peer (§5.9)
                return sock.write(data)
            if of.shut_wr:
                self._broken_pipe(t, "write")
            if of.peer_pipe is None:
                raise SyscallError(Errno.ENOTCONN, "write")
            return self._pipe_write(t, of.peer_pipe, data, "write")
        raise SyscallError(Errno.EBADF, "write")

    def sys_lseek(self, t: Thread, fd: int, offset: int, whence: int = SEEK_SET):
        of = t.process.fdtable.get(fd)
        # Every non-seekable kind: pipes, FIFOs, socketpairs and sockets
        # (including legacy DEVICE-kind fds carrying a fake network peer).
        if of.is_pipe or getattr(of, "socket", None) is not None:
            raise SyscallError(Errno.ESPIPE, "lseek")
        if whence == SEEK_SET:
            of.offset = offset
        elif whence == SEEK_CUR:
            of.offset += offset
        elif whence == SEEK_END:
            of.offset = (of.inode.size if of.inode else 0) + offset
        else:
            raise SyscallError(Errno.EINVAL, "lseek")
        if of.offset < 0:
            raise SyscallError(Errno.EINVAL, "lseek")
        return of.offset

    def sys_pipe(self, t: Thread):
        pipe = Pipe()
        pipe.open_reader()
        pipe.open_writer()
        r = OpenFile(kind=FdKind.PIPE_READ, pipe=pipe, path="pipe:[%d]" % pipe.pipe_id)
        w = OpenFile(kind=FdKind.PIPE_WRITE, pipe=pipe, path="pipe:[%d]" % pipe.pipe_id)
        rfd = t.process.fdtable.install(r)
        wfd = t.process.fdtable.install(w)
        return (rfd, wfd)

    def sys_dup(self, t: Thread, fd: int):
        return t.process.fdtable.dup(fd)

    def sys_dup2(self, t: Thread, oldfd: int, newfd: int):
        # The displaced newfd's implicit close must run full teardown
        # (EOF/EPIPE delivery, inode-number release), not a bare decref.
        return t.process.fdtable.dup2(oldfd, newfd, self._drop_open_file)

    def sys_stat(self, t: Thread, path: str):
        node = self._resolve(t.process, path)
        return self._fs.stat(node)

    def sys_lstat(self, t: Thread, path: str):
        node = self._resolve(t.process, path, follow_last=False)
        return self._fs.stat(node)

    def sys_fstat(self, t: Thread, fd: int):
        of = t.process.fdtable.get(fd)
        if of.inode is None:
            raise SyscallError(Errno.EBADF, "fstat")
        return self._fs.stat(of.inode)

    def sys_access(self, t: Thread, path: str, mode: int = 0):
        self._resolve(t.process, path)
        return 0

    def sys_getdents(self, t: Thread, fd: int, max_entries: Optional[int] = None):
        """Return the next chunk of directory entries.

        Like the real syscall, the result is bounded (by *max_entries*
        here, by the buffer size in Linux) and the fd keeps a cursor, so
        a full listing takes several calls ending with an empty one.
        This is exactly why DetTrace must buffer and sort the *whole*
        stream before handing anything back (§5.5).
        """
        of = t.process.fdtable.get(fd)
        if of.kind is not FdKind.DIRECTORY:
            raise SyscallError(Errno.ENOTDIR, "getdents")
        entries = self._fs.dirent_order(of.inode)
        if max_entries is None:
            chunk = entries[of.offset:]
        else:
            chunk = entries[of.offset:of.offset + max_entries]
        of.offset += len(chunk)
        return chunk

    def sys_mkfifo(self, t: Thread, path: str, mode: int = 0o644):
        """Create a named pipe — the mechanism DetTrace itself uses to
        feed /dev/[u]random from its PRNG (§5.2)."""
        from .inode import Inode
        from .pipes import Pipe

        proc = t.process
        parent, name = self._resolve_parent(proc, path)
        if parent.lookup(name) is not None:
            raise SyscallError(Errno.EEXIST, "mkfifo", path)
        node = Inode(ino=self._fs._new_ino(), kind=FileKind.FIFO,
                     mode=mode & ~proc.umask & 0o7777,
                     uid=proc.uid, gid=proc.gid,
                     atime=self._now, mtime=self._now, ctime=self._now)
        node.fifo_pipe = Pipe()
        parent.add_entry(name, node)
        parent.mtime = parent.ctime = self._now
        self._fs.register_new_inode(node)
        self._fs.note(parent)
        return 0

    def sys_mkdir(self, t: Thread, path: str, mode: int = 0o755):
        proc = t.process
        parent, name = self._resolve_parent(proc, path)
        self._fs.create_dir(parent, name, mode=mode & ~proc.umask & 0o7777,
                            uid=proc.uid, gid=proc.gid, now=self._now)
        return 0

    def sys_rmdir(self, t: Thread, path: str):
        parent, name = self._resolve_parent(t.process, path)
        self._fs.rmdir(parent, name, now=self._now)
        return 0

    def sys_unlink(self, t: Thread, path: str):
        parent, name = self._resolve_parent(t.process, path)
        self._fs.unlink(parent, name, now=self._now)
        return 0

    def sys_rename(self, t: Thread, old: str, new: str):
        proc = t.process
        op, oname = self._resolve_parent(proc, old)
        np, nname = self._resolve_parent(proc, new)
        self._fs.rename(op, oname, np, nname, now=self._now)
        return 0

    def sys_link(self, t: Thread, target: str, linkpath: str):
        proc = t.process
        node = self._resolve(proc, target)
        parent, name = self._resolve_parent(proc, linkpath)
        self._fs.hard_link(parent, name, node, now=self._now)
        return 0

    def sys_symlink(self, t: Thread, target: str, linkpath: str):
        proc = t.process
        parent, name = self._resolve_parent(proc, linkpath)
        self._fs.create_symlink(parent, name, target, uid=proc.uid, gid=proc.gid,
                                now=self._now)
        return 0

    def sys_readlink(self, t: Thread, path: str):
        node = self._resolve(t.process, path, follow_last=False)
        if node.kind is not FileKind.SYMLINK:
            raise SyscallError(Errno.EINVAL, "readlink", path)
        return node.symlink_target

    def sys_chmod(self, t: Thread, path: str, mode: int):
        node = self._resolve(t.process, path)
        node.mode = mode & 0o7777
        node.ctime = self._now
        self._fs.note(node)
        return 0

    def sys_chown(self, t: Thread, path: str, uid: int, gid: int):
        node = self._resolve(t.process, path)
        node.uid, node.gid = uid, gid
        node.ctime = self._now
        self._fs.note(node)
        return 0

    def sys_truncate(self, t: Thread, path: str, length: int):
        # Linux checks the length before the file type: a negative length
        # is EINVAL even on a directory.
        if length < 0:
            raise SyscallError(Errno.EINVAL, "truncate", path)
        node = self._resolve(t.process, path)
        if node.is_dir:
            raise SyscallError(Errno.EISDIR, "truncate", path)
        if not node.is_regular:
            raise SyscallError(Errno.EINVAL, "truncate", path)
        if length > len(node.data):
            self._fs.charge_disk(length - len(node.data))
            node.data.extend(b"\x00" * (length - len(node.data)))
        else:
            del node.data[length:]
        node.mtime = node.ctime = self._now
        self._fs.note(node)
        return 0

    def sys_utime(self, t: Thread, path: str, times=None):
        node = self._resolve(t.process, path)
        if times is None:
            node.atime = node.mtime = self._now
        else:
            node.atime, node.mtime = times
        node.ctime = self._now
        self._fs.note(node)
        return 0

    def sys_fsync(self, t: Thread, fd: int):
        # POSIX: fsync on a descriptor with no backing store — pipes,
        # FIFOs, sockets — fails with EINVAL.  Regular files, directories
        # and devices succeed as a no-op (all writes are immediately
        # durable in the simulated fs).  The verdict depends only on
        # per-process fd state, so fsync stays on the seccomp
        # NATURALLY_REPRODUCIBLE allow-list.
        of = t.process.fdtable.get(fd)
        if of.is_pipe:
            raise SyscallError(Errno.EINVAL, "fsync", "fd %d" % fd)
        return 0

    def sys_getcwd(self, t: Thread):
        return t.process.cwd_path

    def sys_chdir(self, t: Thread, path: str):
        proc = t.process
        node = self._resolve(proc, path)
        if not node.is_dir:
            raise SyscallError(Errno.ENOTDIR, "chdir", path)
        proc.cwd = node
        proc.cwd_path = self._abs_path(proc, path)
        return 0

    def sys_chroot(self, t: Thread, path: str):
        proc = t.process
        node = self._resolve(proc, path)
        if not node.is_dir:
            raise SyscallError(Errno.ENOTDIR, "chroot", path)
        proc.root = node
        proc.cwd = node
        proc.cwd_path = "/"
        return 0

    def sys_umask(self, t: Thread, mask: int = 0o022):
        proc = t.process
        previous = proc.umask
        proc.umask = mask & 0o777
        return previous

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def sys_getpid(self, t: Thread):
        return t.process.nspid

    def sys_getppid(self, t: Thread):
        parent = t.process.parent
        return parent.nspid if parent is not None else 0

    def sys_gettid(self, t: Thread):
        return t.tid

    def sys_getuid(self, t: Thread):
        return t.process.uid

    def sys_getgid(self, t: Thread):
        return t.process.gid

    def sys_setuid(self, t: Thread, uid: int):
        t.process.uid = uid
        return 0

    def sys_setgid(self, t: Thread, gid: int):
        t.process.gid = gid
        return 0

    def sys_uname(self, t: Thread):
        machine = self.kernel.host.machine
        return UtsName(
            sysname="Linux",
            nodename=machine.hostname,
            release="%d.%d.0-generic" % machine.kernel_version,
            version="#1 SMP %s" % machine.os_name,
            machine="x86_64",
        )

    def sys_sysinfo(self, t: Thread):
        return SysInfo(
            uptime=self.kernel.clock.now,
            total_ram=self.kernel.host.machine.total_ram_gb << 30,
            nprocs=self.kernel.host.ncores,
        )

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def sys_time(self, t: Thread):
        return int(self.kernel.clock.wall)

    def sys_gettimeofday(self, t: Thread):
        return self.kernel.clock.wall

    def sys_clock_gettime(self, t: Thread, clock_id: int = CLOCK_REALTIME):
        if clock_id == CLOCK_MONOTONIC:
            return self.kernel.clock.monotonic
        return self.kernel.clock.wall

    def sys_nanosleep(self, t: Thread, seconds: float):
        raise Sleep(seconds)

    def sys_times(self, t: Thread):
        """CPU accounting: depends on jittered scheduling — irreproducible."""
        utime = sum(th.cpu_time for th in t.process.threads)
        return TimesResult(utime=utime, stime=utime * 0.1,
                           cutime=0.0, cstime=0.0)

    def sys_statfs(self, t: Thread, path: str):
        """Filesystem stats: free-space counters are host state."""
        self._resolve(t.process, path)
        machine = self.kernel.host.machine
        total_blocks = (machine.total_ram_gb << 30) // machine.fs_block_size
        used = self._fs._bytes_written // machine.fs_block_size
        return StatfsResult(
            f_type=0xEF53, f_bsize=machine.fs_block_size,
            f_blocks=total_blocks, f_bfree=total_blocks - used - 777,
            f_files=1 << 20, f_ffree=(1 << 20) - len(list(self._fs.walk())))

    def sys_sched_getaffinity(self, t: Thread):
        """The visible CPU set: directly exposes core count."""
        return list(range(self.kernel.host.ncores))

    def sys_getgroups(self, t: Thread):
        return [t.process.gid]

    def sys_sigprocmask(self, t: Thread, how: str = "SIG_SETMASK", mask=()):
        old = t.process.memory.get("_sigmask", ())
        current = set(old)
        if how == "SIG_BLOCK":
            current |= set(mask)
        elif how == "SIG_UNBLOCK":
            current -= set(mask)
        else:
            current = set(mask)
        t.process.memory["_sigmask"] = tuple(sorted(current))
        return tuple(old)

    def sys_setsid(self, t: Thread):
        return t.process.nspid

    def sys_fcntl(self, t: Thread, fd: int, cmd: str = "F_GETFL", arg: int = 0):
        of = t.process.fdtable.get(fd)
        if cmd == "F_GETFL":
            return of.flags
        if cmd == "F_SETFL":
            # Only file-status flags are settable; the access mode and
            # creation flags from open time must survive (POSIX).
            of.flags = (of.flags & ~SETFL_MASK) | (arg & SETFL_MASK)
            return 0
        if cmd == "F_DUPFD":
            return t.process.fdtable.dup(fd, minimum=arg)
        raise SyscallError(Errno.EINVAL, "fcntl", cmd)

    def sys_sync(self, t: Thread):
        return 0

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------

    def sys_getrandom(self, t: Thread, count: int):
        return self.kernel.host.entropy_bytes(count)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def sys_spawn_process(self, t: Thread, path: str, argv: Optional[List[str]] = None,
                          env: Optional[Dict[str, str]] = None,
                          stdin: Optional[int] = None, stdout: Optional[int] = None,
                          stderr: Optional[int] = None,
                          close_fds: Optional[List[int]] = None):
        """fork + execve in one step (how our guests launch children)."""
        return self.kernel.spawn_child(
            t.process, path, argv=argv, env=env,
            stdio={0: stdin, 1: stdout, 2: stderr}, close_fds=close_fds or [],
            caller=t)

    def sys_execve(self, t: Thread, path: str, argv: Optional[List[str]] = None,
                   env: Optional[Dict[str, str]] = None):
        raise ExecveReplace(path, argv or [path], env)

    def sys_exit(self, t: Thread, code: int = 0):
        raise ExitProcess(code)

    def sys_exit_thread(self, t: Thread):
        raise ExitThread()

    def sys_wait4(self, t: Thread, pid: int = -1, options: int = 0):
        proc = t.process
        candidates = [c for c in proc.children if not c.reaped]
        if pid != -1:
            candidates = [c for c in candidates if c.nspid == pid]
        if not candidates:
            raise SyscallError(Errno.ECHILD, "wait4")
        zombies = [c for c in candidates if c.exit_status is not None]
        if zombies:
            child = zombies[0]
            child.reaped = True
            return WaitResult(pid=child.nspid, status=child.exit_status)
        if options & WNOHANG:
            return WaitResult(pid=0, status=0)
        raise WouldBlock([c.exit_channel for c in candidates])

    def sys_spawn_thread(self, t: Thread, func):
        return self.kernel.spawn_thread(t.process, func, caller=t)

    def sys_sched_yield(self, t: Thread):
        return 0

    # ------------------------------------------------------------------
    # signals & timers
    # ------------------------------------------------------------------

    def sys_sigaction(self, t: Thread, signum: int, action):
        if self.kernel.ckpt is not None:
            # Taped at *execution* time (a traced sigaction may execute
            # long after its yield, or never): fast-forward replays the
            # handler-table update at exactly this point.
            self.kernel.ckpt.record_sigact(t.tid, signum)
        old = t.process.signal_handlers.get(signum, "default")
        t.process.signal_handlers[signum] = action
        return old

    def sys_kill(self, t: Thread, pid: int, signum: int):
        target = self.kernel.find_process_by_nspid(pid)
        if target is None or not target.alive:
            raise SyscallError(Errno.ESRCH, "kill")
        self.kernel.deliver_signal(target, signum)
        return 0

    def sys_alarm(self, t: Thread, seconds: float):
        return self.kernel.register_alarm(t.process, seconds, SIGALRM)

    def sys_pause(self, t: Thread):
        proc = t.process
        delivered = getattr(proc, "_signals_delivered", 0)
        acked = getattr(proc, "_pause_acks", 0)
        if t.pending_signals or delivered > acked:
            # A signal arrived since the last pause: consume it.  (Under
            # DetTrace's instant timers the handler already ran before
            # this pause; POSIX pause would hang, but the paper's timer
            # emulation makes the pause observe the emulated expiry.)
            proc._pause_acks = delivered
            raise SyscallError(Errno.EINTR, "pause")
        raise WouldBlock([proc.signal_channel])

    # ------------------------------------------------------------------
    # futex
    # ------------------------------------------------------------------

    def sys_futex(self, t: Thread, op: int, addr, val: int = 0):
        proc = t.process
        if op == FUTEX_WAIT:
            current = proc.memory.get(addr, 0)
            if current != val:
                raise SyscallError(Errno.EAGAIN, "futex")
            raise WouldBlock([proc.futex_channel(addr)])
        if op == FUTEX_WAKE:
            return self.kernel.notify(proc.futex_channel(addr))
        raise SyscallError(Errno.EINVAL, "futex")

    # ------------------------------------------------------------------
    # sockets & ioctl
    # ------------------------------------------------------------------

    def sys_download(self, t: Thread, url: str):
        """Fetch *url* from the (simulated) network.

        Returns ``(body, headers)``; the headers carry the usual
        irreproducible metadata (Date, Server, timing) that naive guests
        embed into artifacts.
        """
        body = self.kernel.network.get(url)
        if body is None:
            raise SyscallError(Errno.ECONNREFUSED, "download", url)
        self.kernel.charge_io(t, len(body))
        headers = {
            "Date": "%.3f" % self.kernel.clock.wall,
            "Server": self.kernel.host.machine.hostname,
            "X-Request-Id": self.kernel.host.entropy_bytes(8).hex(),
        }
        return (body, headers)

    def sys_socketpair(self, t: Thread):
        """AF_UNIX socketpair: two connected bidirectional endpoints.

        Modelled as a crossed pair of pipes; entirely container-internal,
        which is why it is determinizable where network sockets are not
        (the paper's §5.9 future-work item).
        """
        from .pipes import Pipe

        a_to_b, b_to_a = Pipe(), Pipe()
        for pipe in (a_to_b, b_to_a):
            pipe.open_reader()
            pipe.open_writer()
        end_a = OpenFile(kind=FdKind.SOCKETPAIR, path="socketpair:[a]",
                         pipe=b_to_a)
        end_a.peer_pipe = a_to_b
        end_b = OpenFile(kind=FdKind.SOCKETPAIR, path="socketpair:[b]",
                         pipe=a_to_b)
        end_b.peer_pipe = b_to_a
        fd_a = t.process.fdtable.install(end_a)
        fd_b = t.process.fdtable.install(end_b)
        return (fd_a, fd_b)

    def sys_socket(self, t: Thread, family: int = socklib.AF_INET,
                   type: int = socklib.SOCK_STREAM):
        if family not in (socklib.AF_UNIX, socklib.AF_INET):
            raise SyscallError(Errno.EAFNOSUPPORT, "socket")
        if type != socklib.SOCK_STREAM:
            raise SyscallError(Errno.EOPNOTSUPP, "socket")
        of = OpenFile(kind=FdKind.SOCKET, path="socket:[unbound]",
                      sock_family=family)
        return t.process.fdtable.install(of)

    def _sock(self, t: Thread, fd: int, name: str) -> OpenFile:
        of = t.process.fdtable.get(fd)
        if of.kind is not FdKind.SOCKET:
            raise SyscallError(Errno.ENOTSOCK, name)
        return of

    @staticmethod
    def _sock_family_for(address: str) -> Optional[int]:
        """The in-container family for *address*, or None if it names an
        external host (only the fake, irreproducible peer can serve it)."""
        if socklib.is_unix_address(address):
            return socklib.AF_UNIX
        if socklib.is_loopback_address(address):
            return socklib.AF_INET
        return None

    @staticmethod
    def _canon_inet(address: str) -> str:
        """Normalize loopback spellings so bind("localhost:80") and
        connect("127.0.0.1:80") meet in the same registry slot."""
        host, _, port = address.rpartition(":")
        if host in socklib.LOOPBACK_HOSTS:
            return "127.0.0.1:%s" % port
        return address

    def sys_bind(self, t: Thread, fd: int, address: str):
        of = self._sock(t, fd, "bind")
        if of.sock_bound or of.pipe is not None:
            raise SyscallError(Errno.EINVAL, "bind")
        family = self._sock_family_for(address)
        if family is None:
            raise SyscallError(Errno.EADDRNOTAVAIL, "bind", address)
        if family != of.sock_family:
            raise SyscallError(Errno.EAFNOSUPPORT, "bind", address)
        if family == socklib.AF_INET:
            address = self._canon_inet(address)
        of.sock_local = self.kernel.sockets.bind(family, address)
        of.sock_bound = True
        return 0

    def sys_listen(self, t: Thread, fd: int, backlog: int = socklib.SOMAXCONN):
        of = self._sock(t, fd, "listen")
        if of.pipe is not None:
            raise SyscallError(Errno.EISCONN, "listen")
        if not of.sock_bound:
            # Linux autobinds an unbound INET listener to an ephemeral
            # port; ours comes off the deterministic counter.
            if of.sock_family != socklib.AF_INET:
                raise SyscallError(Errno.EINVAL, "listen")
            of.sock_local = self.kernel.sockets.bind(
                socklib.AF_INET, "127.0.0.1:0")
            of.sock_bound = True
        of.listener = self.kernel.sockets.listen(
            of.sock_family, of.sock_local, backlog)
        of.path = "socket:[%s]" % of.sock_local
        return 0

    def sys_accept(self, t: Thread, fd: int):
        """Returns ``(connfd, peer_address)``; blocks on virtual time
        while the backlog is empty, exactly like a pipe read."""
        of = self._sock(t, fd, "accept")
        listener = of.listener
        if listener is None:
            raise SyscallError(Errno.EINVAL, "accept")
        if not listener.pending:
            raise WouldBlock([listener.accept_ready])
        to_server, to_client, peer = listener.pending.pop(0)
        self.kernel.sockets.touch()
        self.kernel.notify(listener.accept_slot)
        conn = OpenFile(kind=FdKind.SOCKET,
                        path="socket:[%s]" % of.sock_local,
                        pipe=to_server, peer_pipe=to_client,
                        sock_family=of.sock_family,
                        sock_local=of.sock_local, sock_peer=peer)
        return (t.process.fdtable.install(conn), peer)

    def sys_connect(self, t: Thread, fd: int, address: str = "example.com:80"):
        of = t.process.fdtable.get(fd)
        if of.kind is not FdKind.SOCKET:
            # Legacy DEVICE-kind fake sockets count as connected.
            if getattr(of, "socket", None) is None:
                raise SyscallError(Errno.ENOTSOCK, "connect")
            return 0
        if of.pipe is not None or getattr(of, "socket", None) is not None:
            raise SyscallError(Errno.EISCONN, "connect")
        if of.listener is not None:
            raise SyscallError(Errno.EINVAL, "connect")
        family = self._sock_family_for(address)
        if family is None:
            # External host: attach the fake network peer so packages
            # still *build* natively (and embed its irreproducible
            # answers); DetTrace's policy layer rejects this path.
            of.socket = _LoopbackSocket(self.kernel)
            of.sock_peer = address
            return 0
        if family != of.sock_family:
            raise SyscallError(Errno.EAFNOSUPPORT, "connect", address)
        if family == socklib.AF_INET:
            address = self._canon_inet(address)
        listener = self.kernel.sockets.lookup(family, address)
        if listener is None:
            raise SyscallError(Errno.ECONNREFUSED, "connect", address)
        if listener.full:
            # Bounded backlog: park until an accept frees a slot.  This
            # check precedes every side effect because a retry re-runs
            # the whole body.
            raise WouldBlock([listener.accept_slot])
        to_server, to_client = Pipe(), Pipe()
        for pipe in (to_server, to_client):
            pipe.open_reader()
            pipe.open_writer()
        if family == socklib.AF_INET:
            local = "127.0.0.1:%d" % self.kernel.sockets.alloc_port()
        else:
            local = ""  # unnamed AF_UNIX client end (autobind)
        of.sock_local = local
        of.sock_peer = address
        of.pipe = to_client          # receive direction
        of.peer_pipe = to_server     # send direction
        of.path = "socket:[%s->%s]" % (local or "unnamed", address)
        listener.pending.append((to_server, to_client, local))
        self.kernel.sockets.touch()
        self.kernel.notify(listener.accept_ready)
        return 0

    def sys_send(self, t: Thread, fd: int, data: bytes):
        of = t.process.fdtable.get(fd)
        if (of.kind not in (FdKind.SOCKET, FdKind.SOCKETPAIR)
                and getattr(of, "socket", None) is None):
            raise SyscallError(Errno.ENOTSOCK, "send")
        return self.sys_write(t, fd, data)

    def sys_recv(self, t: Thread, fd: int, count: int):
        of = t.process.fdtable.get(fd)
        if (of.kind not in (FdKind.SOCKET, FdKind.SOCKETPAIR)
                and getattr(of, "socket", None) is None):
            raise SyscallError(Errno.ENOTSOCK, "recv")
        return self.sys_read(t, fd, count)

    def sys_shutdown(self, t: Thread, fd: int, how: int = socklib.SHUT_RDWR):
        of = t.process.fdtable.get(fd)
        if of.kind not in (FdKind.SOCKET, FdKind.SOCKETPAIR):
            raise SyscallError(Errno.ENOTSOCK, "shutdown")
        if of.pipe is None or of.peer_pipe is None:
            raise SyscallError(Errno.ENOTCONN, "shutdown")
        if how not in (socklib.SHUT_RD, socklib.SHUT_WR, socklib.SHUT_RDWR):
            raise SyscallError(Errno.EINVAL, "shutdown")
        if how in (socklib.SHUT_RD, socklib.SHUT_RDWR) and not of.shut_rd:
            of.shut_rd = True
            self.kernel.notify(of.pipe.close_reader())
        if how in (socklib.SHUT_WR, socklib.SHUT_RDWR) and not of.shut_wr:
            of.shut_wr = True
            # The peer's pending reads drain the buffer, then see EOF.
            self.kernel.notify(of.peer_pipe.close_writer())
        if self.kernel.sockets is not None:
            self.kernel.sockets.touch()
        return 0

    def sys_getsockname(self, t: Thread, fd: int):
        of = self._sock(t, fd, "getsockname")
        return of.sock_local

    def sys_ioctl(self, t: Thread, fd: int, request: str):
        of = t.process.fdtable.get(fd)
        if request == "TIOCGWINSZ":
            return (80, 24)
        if request == "FIONREAD":
            if of.is_pipe and of.pipe is not None:
                return of.pipe.bytes_buffered
            return 0
        raise SyscallError(Errno.ENOTTY, "ioctl", request)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def sys_prctl(self, t: Thread, option: str = "", value: int = 0):
        return 0

    def sys_perf_event_open(self, t: Thread, config: int = 0):
        """Perf counters: host-specific values; DetTrace rejects this."""
        return t.process.fdtable.install(OpenFile(kind=FdKind.DEVICE, path="perf:"))

    def sys_inotify_init(self, t: Thread):
        """Filesystem watches: event arrival is timing; DetTrace rejects."""
        return t.process.fdtable.install(OpenFile(kind=FdKind.DEVICE, path="inotify:"))

    def sys_bpf(self, t: Thread, prog: str = ""):
        return 0

    def sys_getauxval(self, t: Thread, key: str = "AT_SYSINFO_EHDR"):
        """Expose the vDSO base address, as libc's mkstemp path does (§5.3)."""
        if key == "AT_SYSINFO_EHDR":
            return t.process.aslr_base + 0x7000_0000
        return 0
