"""Inodes for the simulated filesystem.

An :class:`Inode` is the on-disk object; open-file state (offsets, flags)
lives in :mod:`repro.kernel.fds`.  Inode *numbers* are allocated by the
filesystem with a recycling free-list, because the paper's virtual-inode
logic (§5.5) must specifically cope with the OS recycling a real inode for
a newly-created file.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from .errors import Errno, KernelPanic
from .types import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, FileKind


@dataclasses.dataclass
class Inode:
    """One filesystem object: file, directory, device, FIFO or symlink."""

    ino: int
    kind: FileKind
    mode: int = DEFAULT_FILE_MODE
    uid: int = 0
    gid: int = 0
    nlink: int = 1
    #: Timestamps in host wall-clock seconds.  These are exactly the
    #: irreproducible metadata DetTrace virtualizes.
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    #: Content for regular files.
    data: bytearray = dataclasses.field(default_factory=bytearray)
    #: Children for directories (insertion order preserved; the *reported*
    #: getdents order is a salted hash order, see Filesystem.dirent_order).
    entries: Dict[str, "Inode"] = dataclasses.field(default_factory=dict)
    #: Target path for symlinks.
    symlink_target: str = ""
    #: Read/write hooks for character devices (wired up by devices.py).
    dev_read: Optional[Callable[[int], bytes]] = None
    dev_write: Optional[Callable[[bytes], int]] = None
    #: Backing pipe for FIFO (named pipe) inodes.
    fifo_pipe: Optional[object] = None
    #: Monotonically increasing generation stamp: bumped when the inode
    #: number is recycled onto a new object, letting tests verify the
    #: DetTrace recycling logic is actually exercised.
    generation: int = 0

    # Unannotated class attributes (NOT dataclass fields, so equality and
    # repr are unaffected):
    #
    # ``namei_epoch`` is the *global* structural-removal epoch backing
    # the Filesystem namei cache: any entry removed anywhere — unlink,
    # rmdir, rename, including direct ``remove_entry`` callers that
    # bypass the Filesystem API — bumps it, so a cached path resolution
    # is valid exactly while the epoch stands still.  Additions don't
    # bump it: only *successful* resolutions are cached, and adding an
    # entry can never change where an existing path already resolves
    # (hard links are non-directories, so even ``..`` parents only move
    # on removal/rename).  Mode/timestamp changes don't bump it because
    # resolution never consults them.
    #
    # ``_dirent_cache`` memoizes this directory's salted-hash getdents
    # order *on the inode itself* (so a recycled object can never
    # inherit a stale order); any entry mutation clears it.
    #
    # ``open_count`` counts open file *descriptions* referencing this
    # inode: POSIX keeps an unlinked inode (and its number) alive until
    # the last close, so the allocator must not recycle the number while
    # any description is live (Filesystem.inode_opened/inode_closed).
    #
    # ``dirty_epoch`` is the incremental-checkpoint stamp: the mutation
    # clock tick at which this inode last changed (Filesystem.note).
    # Nothing in the kernel reads it — it only feeds snapshot capture.
    namei_epoch = 0
    _dirent_cache = None
    open_count = 0
    dirty_epoch = 0

    @property
    def size(self) -> int:
        if self.kind is FileKind.REGULAR:
            return len(self.data)
        if self.kind is FileKind.SYMLINK:
            return len(self.symlink_target)
        return 0

    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.kind is FileKind.REGULAR

    @property
    def full_mode(self) -> int:
        """Mode including the file-type bits, as stat reports it."""
        return self.kind.mode_bits | (self.mode & 0o7777)

    # -- directory operations -------------------------------------------------

    def lookup(self, name: str) -> Optional["Inode"]:
        if not self.is_dir:
            raise KernelPanic("lookup on non-directory inode %d" % self.ino)
        return self.entries.get(name)

    def add_entry(self, name: str, child: "Inode") -> None:
        if not self.is_dir:
            raise KernelPanic("add_entry on non-directory inode %d" % self.ino)
        if name in self.entries:
            raise KernelPanic("duplicate entry %r in inode %d" % (name, self.ino))
        self.entries[name] = child
        self._dirent_cache = None

    def remove_entry(self, name: str) -> "Inode":
        if name not in self.entries:
            raise KernelPanic("missing entry %r in inode %d" % (name, self.ino))
        self._dirent_cache = None
        Inode.namei_epoch += 1
        return self.entries.pop(name)


class InodeAllocator:
    """Allocates inode numbers with recycling.

    Freed numbers are reused lowest-first, mimicking ext4's per-group
    reuse behaviour closely enough that "new file gets the dead file's
    inode" happens regularly under create/unlink churn.
    """

    def __init__(self, start: int):
        self._next = start
        self._free: list = []
        #: Per-number generation counters: bumped every time a number is
        #: handed out, so ``(ino, generation)`` names one object for the
        #: whole run even across recycling.  The checkpoint plane keys
        #: delta records on this pair.
        self._gen: Dict[int, int] = {}

    def allocate(self) -> int:
        if self._free:
            self._free.sort()
            ino = self._free.pop(0)
        else:
            ino = self._next
            self._next += 1
        self._gen[ino] = self._gen.get(ino, 0) + 1
        return ino

    def release(self, ino: int) -> None:
        self._free.append(ino)

    def generation_of(self, ino: int) -> int:
        """Current generation of *ino* (0 if never allocated here)."""
        return self._gen.get(ino, 0)

    @property
    def outstanding_free(self) -> int:
        return len(self._free)


def new_directory(ino: int, mode: int = DEFAULT_DIR_MODE, uid: int = 0, gid: int = 0,
                  now: float = 0.0) -> Inode:
    """Create a fresh directory inode (``.``/``..`` are implicit)."""
    return Inode(ino=ino, kind=FileKind.DIRECTORY, mode=mode, uid=uid, gid=gid,
                 nlink=2, atime=now, mtime=now, ctime=now)


def new_file(ino: int, mode: int = DEFAULT_FILE_MODE, uid: int = 0, gid: int = 0,
             now: float = 0.0, data: bytes = b"") -> Inode:
    """Create a fresh regular-file inode."""
    return Inode(ino=ino, kind=FileKind.REGULAR, mode=mode, uid=uid, gid=gid,
                 atime=now, mtime=now, ctime=now, data=bytearray(data))


ERRNO_BY_KIND_MISMATCH = {
    FileKind.DIRECTORY: Errno.EISDIR,
    FileKind.REGULAR: Errno.ENOTDIR,
}
