"""The vDSO: kernel-provided timing functions in user space (paper §5.3).

Linux maps two special pages into every process:

* the **vDSO** — code implementing ``gettimeofday``/``clock_gettime``/
  ``time`` as plain library calls, invisible to ptrace;
* the **vvar** page — the raw clock data those functions read.

Guest timing helpers go through :class:`~repro.kernel.ops.VdsoCall` by
default, exactly like glibc.  DetTrace's ``on_execve`` hook sets
``process.vdso_patched``, which makes this module route the call back
through the ordinary syscall path (where the tracer sees it) and makes
direct vvar loads fault instead of leaking raw time.
"""

from __future__ import annotations

from .clock import SimClock
from .errors import KernelPanic
from .types import CLOCK_MONOTONIC


class Vdso:
    """Evaluates vDSO fast-path calls against the raw clock."""

    #: The functions the real vDSO exports (x86-64).
    FUNCTIONS = ("time", "gettimeofday", "clock_gettime")

    def __init__(self, clock: SimClock):
        self.clock = clock

    def call(self, name: str, args: dict):
        """Execute a vDSO function natively: raw, irreproducible time,
        with no syscall and hence no ptrace visibility."""
        if name == "time":
            return int(self.clock.wall)
        if name == "gettimeofday":
            return self.clock.wall
        if name == "clock_gettime":
            if args.get("clock_id") == CLOCK_MONOTONIC:
                return self.clock.monotonic
            return self.clock.wall
        raise KernelPanic("unknown vDSO call %r" % name)

    def read_vvar(self) -> float:
        """A direct load from the vvar data page (what glibc's mkstemp
        path effectively does after getauxval, §5.3)."""
        return self.clock.wall
