"""Shrink a divergent program to a minimal reproducer.

Classic greedy ddmin over the op list, then per-op simplification.  The
predicate is "does :func:`~repro.fuzz.runner.check_program` still
fail?" — any failure counts, not the *same* failure, because a shrunk
program that trips a different determinism bug is still worth keeping.

Everything here is deterministic: chunk order, halving schedule and the
simplification passes depend only on the input program, so the same
divergence always shrinks to the same reproducer (corpus entries are
stable across machines, like the grammar itself).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .grammar import ProgramSpec

#: Cheap replacements tried on individual op fields once the op list is
#: minimal.  Shorter data keeps corpus entries readable.
_SIMPLE_DATA = "a"


def _default_predicate(spec: ProgramSpec) -> bool:
    from .runner import check_program
    return not check_program(spec).ok


def shrink(spec: ProgramSpec,
           still_fails: Callable[[ProgramSpec], bool] = None,
           max_checks: int = 200) -> ProgramSpec:
    """Return the smallest spec (ops-wise) that still fails.

    *still_fails* defaults to re-running the full matrix check; tests
    inject cheaper predicates.  At most *max_checks* predicate calls are
    spent — shrinking is best-effort, never endless.
    """
    if still_fails is None:
        still_fails = _default_predicate
    budget = [max_checks]

    def check(candidate: ProgramSpec) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return still_fails(candidate)

    current = spec
    current = _ddmin_ops(current, check)
    current = _simplify_ops(current, check)
    # Op removal may unlock further removal after simplification.
    current = _ddmin_ops(current, check)
    return current


def _ddmin_ops(spec: ProgramSpec, check) -> ProgramSpec:
    """Remove chunks of ops, halving the chunk size until 1."""
    ops = list(spec.ops)
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops) and len(ops) > 1:
            candidate = ops[:i] + ops[i + chunk:]
            if candidate and check(spec.with_ops(candidate)):
                ops = candidate  # keep the removal; retry same index
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2
    return spec.with_ops(ops)


def _simplify_ops(spec: ProgramSpec, check) -> ProgramSpec:
    """Per-op simplification: shrink payloads, thin out thread bodies."""
    ops = [dict(op) for op in spec.ops]
    for i in range(len(ops)):
        # Iterate to a fixpoint per op: accepting one simplification
        # (e.g. dropping a thread body) can expose another (thinning the
        # remaining body).
        progress = True
        while progress:
            progress = False
            for candidate_op in _simpler_versions(ops[i]):
                trial = ops[:i] + [candidate_op] + ops[i + 1:]
                if check(spec.with_ops(trial)):
                    ops[i] = candidate_op
                    progress = True
                    break
    return spec.with_ops(ops)


def _simpler_versions(op: Dict) -> List[Dict]:
    out: List[Dict] = []
    if "data" in op and op["data"] != _SIMPLE_DATA:
        simpler = dict(op)
        simpler["data"] = _SIMPLE_DATA
        out.append(simpler)
    if op.get("op") == "threads":
        bodies = op["bodies"]
        if len(bodies) > 1:
            out.append({"op": "threads", "bodies": bodies[:1]})
        for bi, body in enumerate(bodies):
            if len(body) > 1:
                trimmed = [list(b) if isinstance(b, list) else dict(b)
                           for b in bodies]
                trimmed[bi] = body[:1]
                out.append({"op": "threads", "bodies": trimmed})
    return out
