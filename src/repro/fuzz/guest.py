"""The fuzzer's guest-side interpreter.

One fixed, module-level guest program (:func:`fuzz_guest_main`) executes
whatever op list it finds at ``/fuzz/program.json``.  Keeping the binary
fixed and shipping the program as image *content* means:

* the image stays a pure function of the :class:`~repro.fuzz.grammar.
  ProgramSpec` (the paper's input model);
* the parallel axis can rebuild the image inside forked workers from a
  plain dict — only JSON crosses the pickle boundary.

The interpreter logs one line per op (so any behavioral difference shows
up in stdout, which every matrix cell compares byte-for-byte) and embeds
a small POSIX oracle:

* ``rename`` outcomes are checked against the POSIX kind rules — a
  non-directory landing on a directory must fail EISDIR, a directory on
  a non-directory ENOTDIR — and a silent success prints ``VIOLATION``;
* the ``audit`` op walks the tree and checks that every directory's
  nlink is ``2 + subdirs``, every regular file's nlink equals the number
  of names sharing its inode, and that no *orphan* (open fd with
  ``st_nlink == 0``) shares an inode number with a live named file —
  the unlink-while-open recycling bug in one line of output.

Harnesses treat any ``VIOLATION`` line (or nonzero exit) as a failed
run, independent of the cross-config comparison.
"""

from __future__ import annotations

import json

from ..core.image import Image
from ..kernel.errors import Errno, SyscallError
from ..kernel.types import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    S_IFLNK,
    S_IFMT,
    SIGALRM,
    SIGPIPE,
)

SPEC_PATH = "/fuzz/program.json"

_OPEN_MODES = {
    "r": O_RDONLY,
    "w": O_WRONLY | O_CREAT,
    "rw": O_RDWR | O_CREAT,
}


def _errname(err: SyscallError) -> str:
    try:
        return Errno(err.errno).name
    except ValueError:  # pragma: no cover - unknown errno
        return "E%d" % err.errno


def _kind_char(st) -> str:
    if st.is_dir():
        return "d"
    if st.is_regular():
        return "f"
    if (st.st_mode & S_IFMT) == S_IFLNK:
        return "l"
    return "o"


def build_image(spec) -> Image:
    """The container image for one program spec."""
    image = Image()
    image.add_dir("/fuzz")
    image.add_file(SPEC_PATH, spec.to_json())
    image.add_binary("/bin/fuzz", fuzz_guest_main)
    return image


def fuzz_guest_main(sys):
    """Interpret the op list at SPEC_PATH.  Returns exit code 0 unless
    the interpreter itself breaks (oracle failures print VIOLATION lines
    instead, so the run stays comparable across configs)."""
    raw = yield from sys.read_file(SPEC_PATH)
    ops = json.loads(raw.decode())["ops"]
    slots = {}

    for i, op in enumerate(ops):
        tag = "%03d" % i
        out = yield from _interpret(sys, op, slots, tag, "m")
        yield from sys.println("%s %s %s" % (tag, op["op"], out))
    # Close leftover slots so the kernel-side teardown path is exercised
    # identically no matter which ops survived shrinking.
    for slot in sorted(slots):
        try:
            yield from sys.close(slots[slot])
        except SyscallError:
            pass
    return 0


def _interpret(sys, op, slots, tag, who):
    """Execute one op; returns the outcome string to log."""
    kind = op["op"]
    try:
        if kind == "write":
            yield from sys.write_file(op["path"], op["data"].encode())
            return "ok"
        if kind == "append":
            fd = yield from sys.open(op["path"],
                                     O_WRONLY | O_CREAT | O_APPEND)
            n = yield from sys.write_all(fd, op["data"].encode())
            yield from sys.close(fd)
            return "ok:%d" % n
        if kind == "mkdir":
            yield from sys.mkdir(op["path"])
            return "ok"
        if kind == "rename":
            return (yield from _rename_with_oracle(sys, op))
        if kind == "link":
            yield from sys.syscall("link", target=op["target"],
                                   linkpath=op["path"])
            return "ok"
        if kind == "symlink":
            yield from sys.symlink(op["target"], op["path"])
            return "ok"
        if kind == "unlink":
            yield from sys.unlink(op["path"])
            return "ok"
        if kind == "rmdir":
            yield from sys.syscall("rmdir", path=op["path"])
            return "ok"
        if kind == "open":
            if op["slot"] in slots:
                try:
                    yield from sys.close(slots.pop(op["slot"]))
                except SyscallError:
                    pass
            fd = yield from sys.open(op["path"], _OPEN_MODES[op["mode"]])
            slots[op["slot"]] = fd
            return "ok"
        if kind == "close":
            if op["slot"] not in slots:
                return "empty"
            yield from sys.close(slots.pop(op["slot"]))
            return "ok"
        if kind == "writefd":
            if op["slot"] not in slots:
                return "empty"
            n = yield from sys.write_all(slots[op["slot"]],
                                         op["data"].encode())
            return "ok:%d" % n
        if kind == "readfd":
            if op["slot"] not in slots:
                return "empty"
            data = yield from sys.read(slots[op["slot"]], op["count"])
            return "ok:%r" % (bytes(data),)
        if kind == "fstat":
            if op["slot"] not in slots:
                return "empty"
            st = yield from sys.fstat(slots[op["slot"]])
            return "nlink=%d size=%d %s" % (st.st_nlink, st.st_size,
                                            _kind_char(st))
        if kind == "stat":
            st = yield from sys.stat(op["path"])
            return "nlink=%d size=%d %s" % (st.st_nlink, st.st_size,
                                            _kind_char(st))
        if kind == "listdir":
            names = sorted((yield from sys.listdir(op["path"])))
            return ",".join(names) or "(empty)"
        if kind == "readfile":
            data = yield from sys.read_file(op["path"])
            return "ok:%d:%r" % (len(data), bytes(data[:16]))
        if kind == "time":
            return "t=%d" % (yield from sys.time())
        if kind == "random":
            return (yield from sys.getrandom(op["count"])).hex()
        if kind == "pipe":
            r, w = yield from sys.pipe()
            yield from sys.write_all(w, op["data"].encode())
            yield from sys.close(w)
            data = yield from sys.read_exact(r, len(op["data"]))
            yield from sys.close(r)
            return "ok:%r" % (bytes(data),)
        if kind == "sleep":
            yield from sys.sleep(op["seconds"])
            return "ok"
        if kind == "compute":
            yield from sys.compute(op["work"])
            return "ok"
        if kind == "alarm":
            return (yield from _alarm(sys, op["seconds"]))
        if kind == "killself":
            return (yield from _killself(sys))
        if kind == "threads":
            return (yield from _threads(sys, op, tag))
        if kind == "audit":
            return (yield from _audit(sys, slots))
        if kind == "sock":
            return (yield from _sock(sys, op))
        if kind == "dup2pipe":
            return (yield from _dup2pipe(sys, op))
        if kind == "sigpipe":
            return (yield from _sigpipe(sys))
        return "unknown-op"
    except SyscallError as err:
        return _errname(err)


def _rename_with_oracle(sys, op):
    """rename plus the POSIX kind oracle (EISDIR/ENOTDIR rules)."""
    old_st = new_st = None
    try:
        old_st = yield from sys.lstat(op["old"])
    except SyscallError:
        pass
    try:
        new_st = yield from sys.lstat(op["new"])
    except SyscallError:
        pass
    try:
        yield from sys.rename(op["old"], op["new"])
    except SyscallError as err:
        return _errname(err)
    if old_st is None:
        return "VIOLATION rename-of-missing-succeeded %s" % op["old"]
    if new_st is not None and old_st.is_dir() and not new_st.is_dir():
        return "VIOLATION rename-dir-onto-nondir-succeeded want=ENOTDIR"
    if new_st is not None and not old_st.is_dir() and new_st.is_dir():
        return "VIOLATION rename-nondir-onto-dir-succeeded want=EISDIR"
    return "ok"


def _sock(sys, op):
    """One full stream-socket exchange: listen, connect (the backlog
    queues it), accept, echo, half-close.  Single-threaded on purpose —
    connect completes before accept per TCP backlog semantics, so the
    whole connect/accept/send/recv/shutdown surface runs without any
    scheduler dependence.  Oracles: the echo must round-trip uppercased
    and the client's SHUT_WR must read back as EOF on the server."""
    from ..guest import libc

    data = op["data"].encode()
    lfd = yield from libc.sock_stream_server(sys, op["address"],
                                             op.get("backlog", 8))
    address = yield from sys.getsockname(lfd)   # resolves ":0" draws
    cfd = yield from libc.sock_stream_client(sys, address)
    conn, peer = yield from sys.accept(lfd)
    yield from libc.send_all(sys, cfd, data)
    got = yield from libc.recv_exact(sys, conn, len(data))
    yield from libc.send_all(sys, conn, got.upper())
    echo = yield from libc.recv_exact(sys, cfd, len(data))
    yield from sys.shutdown(cfd, 1)             # SHUT_WR
    eof = yield from sys.recv(conn, 8)
    for fd in (conn, cfd, lfd):
        yield from sys.close(fd)
    if echo != data.upper():
        return "VIOLATION sock-echo-mismatch got=%r" % (bytes(echo),)
    if eof != b"":
        return "VIOLATION sock-shutdown-not-eof got=%r" % (bytes(eof),)
    return "ok:%d addr=%s peer=%s" % (len(echo), address, peer or "unnamed")


def _dup2pipe(sys, op):
    """dup2 over a pipe's last write fd: the displaced fd must go
    through full close teardown, so the reader drains the buffer and
    then sees EOF instead of blocking forever (FDTable.dup2 fix)."""
    data = op["data"].encode()
    r, w = yield from sys.pipe()
    spare = yield from sys.open("/fuzz/dup2-spare", _OPEN_MODES["w"])
    yield from sys.write_all(w, data)
    yield from sys.dup2(spare, w)               # implicit close of w
    got = yield from sys.read(r, len(data))
    eof = yield from sys.read(r, 8)
    for fd in (r, w, spare):
        try:
            yield from sys.close(fd)
        except SyscallError:
            pass
    if eof != b"":
        return "VIOLATION dup2-missing-eof got=%r" % (bytes(eof),)
    return "ok:%d" % len(got)


def _sigpipe(sys):
    """Write to a reader-less pipe twice: once with a counting handler
    (SIGPIPE must be *delivered*, not just mapped to EPIPE) and once
    with SIG_IGN (plain EPIPE, no death).  Restores SIG_IGN before
    returning so later ops can't be killed by a stray SIGPIPE."""
    fired_key = "sigpipe_fired"

    def on_sigpipe(hsys, signum):
        hsys.mem[fired_key] = hsys.mem.get(fired_key, 0) + 1
        yield from hsys.compute(1e-6)

    outcomes = []
    before = sys.mem.get(fired_key, 0)      # a program may run this twice
    yield from sys.sigaction(SIGPIPE, on_sigpipe)
    r, w = yield from sys.pipe()
    yield from sys.close(r)
    try:
        yield from sys.write_all(w, b"x")
        outcomes.append("wrote")
    except SyscallError as err:
        outcomes.append(_errname(err))
    yield from sys.sched_yield()                # drain the handler frame
    yield from sys.close(w)

    yield from sys.sigaction(SIGPIPE, "ignore")
    r, w = yield from sys.pipe()
    yield from sys.close(r)
    try:
        yield from sys.write_all(w, b"y")
        outcomes.append("wrote")
    except SyscallError as err:
        outcomes.append(_errname(err))
    yield from sys.close(w)

    fired = sys.mem.get(fired_key, 0) - before
    if outcomes != ["EPIPE", "EPIPE"]:
        return "VIOLATION sigpipe-not-epipe outcomes=%s" % ",".join(outcomes)
    if fired != 1:
        return "VIOLATION sigpipe-not-delivered fired=%d want=1" % fired
    return "ok:fired=%d" % fired


def _alarm(sys, seconds):
    """sigaction + alarm + pause; logs whether the handler fired."""
    def on_alarm(hsys, signum):
        hsys.mem["alarm_fired"] = hsys.mem.get("alarm_fired", 0) + 1
        yield from hsys.compute(1e-6)

    yield from sys.sigaction(SIGALRM, on_alarm)
    yield from sys.alarm(seconds)
    try:
        yield from sys.pause()
    except SyscallError as err:
        if err.errno != Errno.EINTR:
            return _errname(err)
    return "fired=%d" % sys.mem.get("alarm_fired", 0)


def _killself(sys):
    """Deliver SIGALRM to self through kill(2) (handler, not death)."""
    def on_sig(hsys, signum):
        hsys.mem["self_sig"] = hsys.mem.get("self_sig", 0) + 1
        yield from hsys.compute(1e-6)

    yield from sys.sigaction(SIGALRM, on_sig)
    pid = yield from sys.getpid()
    yield from sys.kill(pid, SIGALRM)
    return "sig=%d" % sys.mem.get("self_sig", 0)


def _threads(sys, op, tag):
    """Spawn one thread per body; each interprets its ops, then main
    joins on a shared-memory counter (the futex-free idiom)."""
    bodies = op["bodies"]
    done_key = "threads_done_" + tag

    def worker_for(index, body):
        def worker(wsys):
            wslots = {}
            for j, wop in enumerate(body):
                out = yield from _interpret(wsys, wop, wslots,
                                            "%s.t%d.%d" % (tag, index, j),
                                            "t%d" % index)
                yield from wsys.println(
                    "%s.t%d.%d %s %s" % (tag, index, j, wop["op"], out))
            for slot in sorted(wslots):
                try:
                    yield from wsys.close(wslots[slot])
                except SyscallError:
                    pass
            wsys.mem[done_key] = wsys.mem.get(done_key, 0) + 1
        return worker

    for index, body in enumerate(bodies):
        yield from sys.spawn_thread(worker_for(index, body))
    # Join on a blocking syscall, not a sched_yield spin: under the
    # serialized-thread scheduler only a *blocking* call reliably cedes
    # the quantum to the workers.
    while sys.mem.get(done_key, 0) < len(bodies):
        yield from sys.sleep(0.01)
    return "joined=%d" % len(bodies)


def _audit(sys, slots):
    """Walk the tree and check the POSIX bookkeeping invariants."""
    pending = ["."]
    dir_info = []          # (path, st_nlink, n_subdirs)
    ino_groups = {}        # st_ino -> [(path, st_nlink)]
    while pending:
        d = pending.pop(0)
        try:
            names = sorted((yield from sys.listdir(d)))
        except SyscallError:
            continue
        nsub = 0
        for name in names:
            path = d + "/" + name
            try:
                st = yield from sys.lstat(path)
            except SyscallError:
                continue
            if st.is_dir():
                nsub += 1
                pending.append(path)
            elif st.is_regular():
                ino_groups.setdefault(st.st_ino, []).append(
                    (path, st.st_nlink))
        try:
            dst = yield from sys.stat(d)
            dir_info.append((d, dst.st_nlink, nsub))
        except SyscallError:
            continue
    violations = []
    for d, nlink, nsub in dir_info:
        if nlink != 2 + nsub:
            violations.append("dir-nlink %s have=%d want=%d"
                              % (d, nlink, 2 + nsub))
    for ino in sorted(ino_groups):
        group = ino_groups[ino]
        for path, nlink in group:
            if nlink != len(group):
                violations.append("file-nlink %s have=%d want=%d"
                                  % (path, nlink, len(group)))
    # Orphan identity: an unlinked-but-open file must keep its inode
    # number to itself until the last close.
    for slot in sorted(slots):
        try:
            st = yield from sys.fstat(slots[slot])
        except SyscallError:
            continue
        if st.is_regular() and st.st_nlink == 0 and st.st_ino in ino_groups:
            violations.append("ino-reuse slot=%s ino=%d shared-with=%s"
                              % (slot, st.st_ino,
                                 ino_groups[st.st_ino][0][0]))
    for v in violations:
        yield from sys.println("VIOLATION " + v)
    return "dirs=%d files=%d viol=%d" % (
        len(dir_info), sum(len(g) for g in ino_groups.values()),
        len(violations))
