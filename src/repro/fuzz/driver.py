"""The ``repro fuzz`` loop: generate, check, shrink, bank.

A fuzz run is itself deterministic: ``--seed S --budget N`` walks seeds
``S, S+1, ... S+N-1`` through :func:`~repro.fuzz.runner.check_program`
in order, so a CI failure is reproducible locally with the same flags.
A wall-clock budget (``--seconds``) can bound the walk for smoke use;
the seed at which it stopped is printed so the walk can resume.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, List, Optional

from .corpus import CorpusEntry, save_entry
from .grammar import generate_program
from .runner import MatrixReport, check_program
from .shrinker import shrink


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    start_seed: int
    programs_run: int
    divergences: List[MatrixReport]
    saved_paths: List[str]
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_fuzz(seed: int = 0, budget: int = 100,
             seconds: Optional[float] = None,
             workers: int = 2, rnr: bool = True,
             corpus_dir: Optional[str] = None,
             do_shrink: bool = True,
             log: Callable[[str], None] = lambda s: None) -> FuzzReport:
    """Fuzz seeds ``[seed, seed+budget)``; bank shrunk reproducers.

    *corpus_dir* of ``None`` disables banking (reports still carry the
    shrunk spec).  *seconds* optionally cuts the walk short.
    """
    t0 = time.monotonic()
    divergences: List[MatrixReport] = []
    saved: List[str] = []
    ran = 0
    for s in range(seed, seed + budget):
        if seconds is not None and time.monotonic() - t0 >= seconds:
            log("time budget exhausted at seed %d (%d programs)" % (s, ran))
            break
        spec = generate_program(s)
        # diagnose=True: the first mismatching pair of a divergent
        # program is re-run under repro.diag for a localized report.
        report = check_program(spec, workers=workers, rnr=rnr,
                               diagnose=True)
        ran += 1
        if report.ok:
            if ran % 10 == 0:
                log("... %d programs, all deterministic" % ran)
            continue
        log("DIVERGENCE %s" % report.summary())
        if do_shrink:
            # The shrink predicate stays diagnosis-free: it runs O(ops)
            # times and only needs a boolean.
            small = shrink(spec, lambda sp: not check_program(
                sp, workers=workers, rnr=rnr).ok)
            final = check_program(small, workers=workers, rnr=rnr,
                                  diagnose=True)
            # Shrinking can (rarely) lose the failure; keep the original.
            report = final if not final.ok else report
            log("shrunk to %d ops" % len(report.spec.ops))
        divergences.append(report)
        if corpus_dir is not None:
            entry = CorpusEntry(spec=report.spec,
                                reason="found by repro fuzz",
                                original_failures=tuple(report.failures))
            if report.divergence is not None:
                os.makedirs(corpus_dir, exist_ok=True)
                diag_name = entry.name + ".divergence.json"
                report.divergence.write_json(
                    os.path.join(corpus_dir, diag_name))
                entry.divergence_report = diag_name
            saved.append(save_entry(entry, corpus_dir))
            log("banked %s" % saved[-1])
    return FuzzReport(start_seed=seed, programs_run=ran,
                      divergences=divergences, saved_paths=saved,
                      elapsed=time.monotonic() - t0)


def format_report(report: FuzzReport) -> str:
    lines = [
        "fuzz: %d programs from seed %d in %.1fs" % (
            report.programs_run, report.start_seed, report.elapsed),
    ]
    if report.ok:
        lines.append("fuzz: no divergences — every program was a pure "
                     "function of its spec across the full matrix")
    else:
        lines.append("fuzz: %d DIVERGENT program(s):" % len(report.divergences))
        for rep in report.divergences:
            lines.append("  " + rep.summary())
        for path in report.saved_paths:
            lines.append("  banked: " + path)
    return "\n".join(lines)
