"""repro.fuzz — the differential determinism fuzzer.

DetTrace's thesis is that a container run is a pure function of
(image, config, host); the repo now carries several independently-cached
fast paths (the O(log n) scheduler, the namei/dirent caches, the obs-off
dispatch ring, the parallel fan-out) whose equivalence used to rest on
hand-written differential tests alone.  This package applies DiOS/rr
style adversarial pressure instead:

* :mod:`repro.fuzz.grammar` — a seeded grammar generates randomized
  guest programs (rename/link/rmdir storms over shared trees, thread
  spawns, signals and timers, time/random reads, pipes) as plain
  JSON-able op lists;
* :mod:`repro.fuzz.guest` — a fixed guest interpreter executes an op
  list inside the container, logging every outcome and auditing POSIX
  invariants (nlink bookkeeping, orphan-inode identity) as it goes;
* :mod:`repro.fuzz.runner` — each program runs across the configuration
  matrix (``logical`` vs ``logical-ref`` scheduler × fs caches on/off ×
  observe on/off × serial vs ``repro.parallel`` fan-out × record/replay
  via ``repro.rnr``) and the harness asserts byte-identical output
  hashes, schedules and virtual times;
* :mod:`repro.fuzz.shrinker` — divergent programs are shrunk to a
  minimal reproducer;
* :mod:`repro.fuzz.corpus` — reproducers are written as corpus entries
  that the test suite replays forever after (regression tests by
  construction);
* :mod:`repro.fuzz.driver` — the ``repro fuzz`` loop tying it together.
"""

from .corpus import CorpusEntry, load_corpus, replay_corpus, save_entry
from .driver import FuzzReport, format_report, run_fuzz
from .grammar import ProgramSpec, generate_program
from .guest import build_image, fuzz_guest_main
from .runner import Cell, MATRIX, MatrixReport, check_program, run_cell
from .shrinker import shrink

__all__ = [
    "Cell",
    "CorpusEntry",
    "FuzzReport",
    "MATRIX",
    "MatrixReport",
    "ProgramSpec",
    "build_image",
    "check_program",
    "format_report",
    "fuzz_guest_main",
    "generate_program",
    "load_corpus",
    "replay_corpus",
    "run_cell",
    "run_fuzz",
    "save_entry",
    "shrink",
]
