"""The regression corpus: shrunk reproducers as checked-in JSON.

Every divergence the fuzzer ever finds becomes a small JSON file under
``tests/fuzz/corpus/``; the test suite replays the whole directory on
every run.  A corpus entry is a *program*, not an assertion — replaying
it re-runs the full configuration matrix, so the entry keeps guarding
against whatever class of bug it once exposed (and any new one the same
program happens to trip).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional

from .grammar import ProgramSpec

#: Default corpus location, relative to the repo root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz", "corpus")


@dataclasses.dataclass
class CorpusEntry:
    """One minimal reproducer plus the context it was found in."""

    spec: ProgramSpec
    #: Human note: which bug/divergence this once exposed.
    reason: str = ""
    #: Failure strings from the run that was shrunk (historical record —
    #: a healthy tree reproduces none of them).
    original_failures: tuple = ()
    #: Corpus-relative path of the banked repro.diag divergence report
    #: for the shrunk program ("" when diagnosis was off or clean).
    divergence_report: str = ""

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "reason": self.reason,
            "original_failures": list(self.original_failures),
            "program": self.spec.to_dict(),
        }
        if self.divergence_report:
            data["divergence_report"] = self.divergence_report
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        return cls(spec=ProgramSpec.from_dict(data["program"]),
                   reason=data.get("reason", ""),
                   original_failures=tuple(data.get("original_failures", ())),
                   divergence_report=data.get("divergence_report", ""))

    @property
    def name(self) -> str:
        return "seed%d-%s" % (self.spec.seed, self.spec.digest[:12])


def save_entry(entry: CorpusEntry, corpus_dir: str,
               filename: Optional[str] = None) -> str:
    """Write *entry* as ``<corpus_dir>/<name>.json``; returns the path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, (filename or entry.name) + ".json")
    with open(path, "w") as fh:
        json.dump(entry.to_dict(), fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def load_corpus(corpus_dir: str) -> List[CorpusEntry]:
    """All entries in *corpus_dir*, sorted by filename (deterministic)."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(corpus_dir):
        return entries
    for fname in sorted(os.listdir(corpus_dir)):
        # Divergence reports are banked beside their entries; they are
        # attachments, not corpus entries themselves.
        if not fname.endswith(".json") or fname.endswith(".divergence.json"):
            continue
        with open(os.path.join(corpus_dir, fname)) as fh:
            entries.append(CorpusEntry.from_dict(json.load(fh)))
    return entries


def replay_corpus(corpus_dir: str, workers: int = 2,
                  rnr: bool = True) -> List:
    """Re-check every corpus entry; returns the list of failed reports."""
    from .runner import check_program

    failed = []
    for entry in load_corpus(corpus_dir):
        report = check_program(entry.spec, workers=workers, rnr=rnr)
        if not report.ok:
            failed.append(report)
    return failed
