"""Seeded program grammar for the differential determinism fuzzer.

A generated program is a :class:`ProgramSpec`: a flat list of JSON-able
op dicts over a small shared namespace of directories and files, biased
toward the operations whose fast paths the repo optimizes (namei-heavy
rename/link/rmdir churn, getdents listings, thread interleavings,
signal/timer delivery, pipe traffic, time/random reads).  Generation is
a pure function of the seed — the same seed always yields the same
program on every machine, which is what lets a corpus entry name a
divergence by ``(seed, ops)`` alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Any, Dict, List

#: The shared tree the ops fight over.  Deliberately tiny so that
#: rename/link/rmdir sequences collide constantly.
DIR_POOL = ("d0", "d1", "d2", "d0/s0", "d1/s1")
FILE_POOL = ("f0", "f1", "f2", "d0/f0", "d0/f1", "d1/f0", "d2/f0",
             "d0/s0/f0", "d1/s1/f0")
#: Every path the grammar may mention (rename targets draw from both).
PATH_POOL = DIR_POOL + FILE_POOL

DATA_POOL = ("alpha", "bravo", "charlie-charlie", "x" * 64)

#: Stream-socket endpoints the ``sock`` op binds: AF_UNIX paths plus
#: loopback AF_INET, including port 0 (deterministic ephemeral draw).
SOCK_ADDR_POOL = ("/fuzz/a.sock", "/fuzz/b.sock",
                  "127.0.0.1:7070", "127.0.0.1:0")

#: fd-slot names the open/close/readfd/writefd/fstat ops share.
SLOT_POOL = (0, 1, 2, 3)

#: Weighted op menu for the main thread. Weights are relative integers.
_MAIN_MENU = (
    ("write", 10), ("mkdir", 7), ("rename", 12), ("link", 7),
    ("unlink", 7), ("rmdir", 5), ("symlink", 4), ("append", 4),
    ("open", 6), ("close", 4), ("writefd", 4), ("readfd", 3),
    ("fstat", 4), ("stat", 5), ("listdir", 6), ("readfile", 3),
    ("time", 4), ("random", 4), ("pipe", 3), ("sleep", 2),
    ("compute", 3), ("threads", 5), ("alarm", 2), ("killself", 2),
    ("audit", 4), ("sock", 5), ("dup2pipe", 2), ("sigpipe", 2),
)

#: Restricted menu for thread bodies: no nested threads, no slot ops
#: (slots are main-thread state), no audit (main-only, needs quiescence).
_THREAD_MENU = (
    ("write", 10), ("mkdir", 5), ("rename", 8), ("link", 5),
    ("unlink", 5), ("rmdir", 3), ("stat", 4), ("listdir", 4),
    ("time", 3), ("random", 3), ("pipe", 2), ("sleep", 2),
    ("compute", 3), ("readfile", 2),
)


@dataclasses.dataclass(frozen=True)
class ProgramSpec:
    """One generated guest program: a seed tag plus its op list."""

    seed: int
    ops: tuple  # tuple of op dicts (frozen for hashability of the spec)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "ops": [dict(op) for op in self.ops]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramSpec":
        return cls(seed=int(data.get("seed", 0)),
                   ops=tuple(dict(op) for op in data["ops"]))

    @classmethod
    def from_json(cls, text: str) -> "ProgramSpec":
        return cls.from_dict(json.loads(text))

    @property
    def digest(self) -> str:
        """Stable identity of the program (used for corpus filenames)."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    def uses_threads(self) -> bool:
        """Multi-threaded programs are excluded from the rnr axis (the
        recorder predates the thread story, mirroring the paper)."""
        return any(op["op"] == "threads" for op in self.ops)

    def rnr_compatible(self) -> bool:
        """Whether the rnr record/replay axis can reproduce this program.

        Pure-injection replay feeds recorded results to trapped syscalls
        without executing them, so it cannot reproduce (a) kernel-side
        signal delivery — an injected EPIPE write never raises SIGPIPE,
        so handler-dependent control flow diverges — or (b) pass-through
        fd aliasing — ``dup2`` executes natively against fds that were
        never really opened.  Mirrors rr's own partial syscall coverage
        (the paper's §7.1.3 crash on 46 of 81 packages)."""
        return not any(op["op"] in ("sigpipe", "dup2pipe")
                       for op in self.ops)

    def with_ops(self, ops) -> "ProgramSpec":
        return ProgramSpec(seed=self.seed, ops=tuple(dict(op) for op in ops))


def _weighted_choice(rng: random.Random, menu) -> str:
    total = sum(w for _, w in menu)
    roll = rng.randrange(total)
    for name, w in menu:
        roll -= w
        if roll < 0:
            return name
    return menu[-1][0]  # pragma: no cover - roll is always in range


def _gen_op(rng: random.Random, name: str) -> Dict[str, Any]:
    if name == "write":
        return {"op": "write", "path": rng.choice(FILE_POOL),
                "data": rng.choice(DATA_POOL)}
    if name == "append":
        return {"op": "append", "path": rng.choice(FILE_POOL),
                "data": rng.choice(DATA_POOL)}
    if name == "mkdir":
        return {"op": "mkdir", "path": rng.choice(DIR_POOL)}
    if name == "rename":
        return {"op": "rename", "old": rng.choice(PATH_POOL),
                "new": rng.choice(PATH_POOL)}
    if name == "link":
        return {"op": "link", "target": rng.choice(PATH_POOL),
                "path": rng.choice(FILE_POOL)}
    if name == "symlink":
        return {"op": "symlink", "target": rng.choice(PATH_POOL),
                "path": rng.choice(FILE_POOL)}
    if name == "unlink":
        return {"op": "unlink", "path": rng.choice(PATH_POOL)}
    if name == "rmdir":
        return {"op": "rmdir", "path": rng.choice(PATH_POOL)}
    if name == "open":
        return {"op": "open", "path": rng.choice(FILE_POOL),
                "slot": rng.choice(SLOT_POOL),
                "mode": rng.choice(("r", "w", "rw"))}
    if name == "close":
        return {"op": "close", "slot": rng.choice(SLOT_POOL)}
    if name == "writefd":
        return {"op": "writefd", "slot": rng.choice(SLOT_POOL),
                "data": rng.choice(DATA_POOL)}
    if name == "readfd":
        return {"op": "readfd", "slot": rng.choice(SLOT_POOL),
                "count": rng.choice((4, 16, 64))}
    if name == "fstat":
        return {"op": "fstat", "slot": rng.choice(SLOT_POOL)}
    if name == "stat":
        return {"op": "stat", "path": rng.choice(PATH_POOL)}
    if name == "listdir":
        return {"op": "listdir", "path": rng.choice((".",) + DIR_POOL)}
    if name == "readfile":
        return {"op": "readfile", "path": rng.choice(FILE_POOL)}
    if name == "time":
        return {"op": "time"}
    if name == "random":
        return {"op": "random", "count": rng.choice((4, 8))}
    if name == "pipe":
        return {"op": "pipe", "data": rng.choice(DATA_POOL)}
    if name == "sleep":
        return {"op": "sleep", "seconds": rng.choice((0.01, 0.05))}
    if name == "compute":
        return {"op": "compute", "work": rng.choice((1e-5, 1e-4))}
    if name == "alarm":
        return {"op": "alarm", "seconds": rng.choice((0.01, 0.03))}
    if name == "killself":
        return {"op": "killself"}
    if name == "audit":
        return {"op": "audit"}
    if name == "sock":
        return {"op": "sock", "address": rng.choice(SOCK_ADDR_POOL),
                "data": rng.choice(DATA_POOL),
                "backlog": rng.choice((1, 2, 8))}
    if name == "dup2pipe":
        return {"op": "dup2pipe", "data": rng.choice(DATA_POOL)}
    if name == "sigpipe":
        return {"op": "sigpipe"}
    if name == "threads":
        bodies = []
        for _ in range(rng.randint(1, 3)):
            body = [_gen_op(rng, _weighted_choice(rng, _THREAD_MENU))
                    for _ in range(rng.randint(1, 4))]
            bodies.append(body)
        return {"op": "threads", "bodies": bodies}
    raise ValueError("unknown op template %r" % name)  # pragma: no cover


def generate_program(seed: int, min_ops: int = 4, max_ops: int = 18) -> ProgramSpec:
    """Generate the program for *seed* (pure; stable across machines)."""
    rng = random.Random(seed)
    n = rng.randint(min_ops, max_ops)
    ops: List[Dict[str, Any]] = []
    # Seed the tree so early ops have something to collide with.
    for path in rng.sample(DIR_POOL[:3], rng.randint(1, 3)):
        ops.append({"op": "mkdir", "path": path})
    for path in rng.sample(FILE_POOL[:3], rng.randint(1, 2)):
        ops.append({"op": "write", "path": path, "data": rng.choice(DATA_POOL)})
    while len(ops) < n:
        ops.append(_gen_op(rng, _weighted_choice(rng, _MAIN_MENU)))
    # Every program ends with a full invariant audit: whatever the churn
    # above did, nlink/orphan bookkeeping must balance.
    ops.append({"op": "audit"})
    return ProgramSpec(seed=seed, ops=tuple(ops))
