"""Execute one program across the configuration matrix and compare.

The determinism claim under test: a container's guest-visible outcome is
a pure function of (image, config-surface, nothing else).  The repo's
internal knobs — which scheduler implementation runs, whether the namei/
dirent caches are on, whether the observability plane records — and the
host the container happens to boot on must all be invisible.  Two
comparisons express that:

* **cell axis** — every cell of :data:`MATRIX` runs the program on the
  *same* host with different internal knobs; the full fingerprint
  (stdout, tree, virtual wall time, syscall counts, metrics, trace)
  must match byte for byte;
* **host axis** — the base cell re-runs on two more hosts (different
  entropy, boot epoch, pid/inode bases, getdents salt); the
  guest-visible surface (exit/stdout/stderr/tree) must match.

Four further axes ride on top:

* **serial vs parallel** — the exact cell list re-runs through
  ``repro.parallel.run_jobs`` on a worker pool; the records must equal
  the serial ones (this is what caught the unpicklable-error bug);
* **record/replay** — thread-free programs are recorded natively via
  ``repro.rnr`` and replayed on a different boot; a
  ``ReplayDivergence`` is a failure;
* **crash/resume** — the program re-runs under checkpointing with a
  kill injected mid-run (the newest surviving snapshot is usually a
  dirty-tracked delta), resumes from the journal, and must reproduce
  the straight base record byte for byte — the resume-identity
  contract, fuzzed;
* **guest oracle** — any ``VIOLATION`` line the in-guest POSIX auditor
  printed fails the program outright, even if every cell agrees.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import ContainerConfig
from ..core.container import CRASHED, RESUMED, DetTrace, OK
from ..cpu.machine import HostEnvironment
from ..parallel import Job, run_jobs
from ..repro_tools.hashing import tree_digest
from .grammar import ProgramSpec
from .guest import build_image


@dataclasses.dataclass(frozen=True)
class Cell:
    """One point of the configuration matrix."""

    name: str
    scheduler: str = "logical"
    fs_caches: bool = True
    observe: bool = False
    #: Part of the *config surface* (a different seed is a different
    #: container, legitimately divergent).  MATRIX keeps it fixed; tests
    #: vary it as a known-divergent negative control for the harness.
    prng_seed: int = 0

    def config(self) -> ContainerConfig:
        # deterministic_loopback is on in every cell: the sock ops bind
        # loopback AF_INET endpoints, which the policy layer otherwise
        # rejects (§5.9).  Constant across the matrix, so it is part of
        # the shared config surface, not a compared knob.
        return ContainerConfig(scheduler=self.scheduler,
                               fs_caches=self.fs_caches,
                               observe=self.observe,
                               prng_seed=self.prng_seed,
                               deterministic_loopback=True)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Cell":
        return cls(**data)


#: The matrix.  Every determinism-relevant internal knob appears both on
#: and off, and the reference scheduler shadows the O(log n) one.
MATRIX: Tuple[Cell, ...] = (
    Cell("base"),
    Cell("sched-ref", scheduler="logical-ref"),
    Cell("nocache", fs_caches=False),
    Cell("observe", observe=True),
    Cell("ref-nocache-obs", scheduler="logical-ref", fs_caches=False,
         observe=True),
)

def _host_for(spec_seed: int, index: int) -> HostEnvironment:
    """Deterministic host #index for one program: entropy, boot epoch,
    pid/ino bases and getdents salt all vary with *index*."""
    return HostEnvironment(
        entropy_seed=(spec_seed * 31 + index * 7 + 1) & 0xFFFFFFFF,
        boot_epoch=1.5e9 + 1e7 * index + (spec_seed % 997),
        pid_start=1000 + 500 * index,
        inode_start=100_000 + 10_000 * index,
        dirent_hash_salt=index * 0x9E37 + spec_seed % 251,
    )


#: Fields every matrix cell (same host, different internal knobs) must
#: agree on.  ``trace`` is deliberately absent (it only exists under
#: observe=True; the observe cells compare it among themselves).
COMPARED_FIELDS = ("status", "exit_code", "stdout", "stderr", "tree",
                   "wall_time", "syscalls", "counters", "totals")

#: Fields that must survive a change of *host* (different boot, entropy,
#: pid/inode bases): the guest-visible surface.  Host wall time and raw
#: syscall counts may legitimately absorb scheduling jitter once threads
#: are involved, so they are excluded here — matching what the repo's
#: cross-host property tests guarantee.
HOST_INVARIANT_FIELDS = ("status", "exit_code", "stdout", "stderr", "tree")

#: Fields a kill+resume run must reproduce from the straight base run.
#: ``status`` is excluded by construction — a successful resume reports
#: the more specific ``resumed`` — and checked separately.
CKPT_INVARIANT_FIELDS = tuple(f for f in COMPARED_FIELDS if f != "status")


def run_cell(spec_dict: Dict[str, Any], cell_dict: Dict[str, Any],
             host_index: int = 0) -> Dict[str, Any]:
    """Run one program in one cell; return its fingerprint record.

    Module-level and dict-in/dict-out on purpose: the parallel axis
    ships exactly this function to forked workers, so only JSON-able
    payloads ever cross the pickle boundary.
    """
    spec = ProgramSpec.from_dict(spec_dict)
    cell = Cell.from_dict(cell_dict)
    host = _host_for(spec.seed, host_index)
    result = DetTrace(cell.config()).run(build_image(spec), "/bin/fuzz",
                                         host=host)
    return _record(cell.name, result)


def _record(cell_name: str, result) -> Dict[str, Any]:
    """The comparable fingerprint record of one container result."""
    record: Dict[str, Any] = {
        "cell": cell_name,
        "status": result.status,
        "exit_code": result.exit_code,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "tree": tree_digest(result.output_tree),
        "wall_time": result.wall_time,
        "syscalls": result.syscall_count,
        "counters": dict(result.metrics.counters) if result.metrics else {},
        "totals": dict(result.metrics.totals) if result.metrics else {},
        "trace": None,
        "violations": [line for line in result.stdout.splitlines()
                       if "VIOLATION" in line],
    }
    if result.trace is not None:
        chrome = json.dumps(result.trace.to_chrome(), sort_keys=True)
        record["trace"] = hashlib.sha256(chrome.encode()).hexdigest()
    return record


@dataclasses.dataclass
class MatrixReport:
    """Everything :func:`check_program` learned about one program."""

    spec: ProgramSpec
    records: List[Dict[str, Any]]
    failures: List[str]
    #: First-divergence diagnosis (a :class:`repro.diag.DivergenceReport`)
    #: of the first mismatching pair, when ``check_program(...,
    #: diagnose=True)`` found one.  Typed loosely to keep the fuzz plane
    #: importable without repro.diag.
    divergence: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return "seed=%d ops=%d ok" % (self.spec.seed, len(self.spec.ops))
        text = "seed=%d ops=%d FAIL: %s" % (
            self.spec.seed, len(self.spec.ops), "; ".join(self.failures))
        if self.divergence is not None and self.divergence.diverged:
            text += " [first divergence: %s]" % self.divergence.summary
        return text


def _diff_records(base: Dict[str, Any], other: Dict[str, Any],
                  fields) -> List[str]:
    out = []
    for field in fields:
        if base[field] != other[field]:
            out.append("%s!=%s on %r" % (base["cell"], other["cell"], field))
    return out


def diagnose_pair(spec: ProgramSpec, cell_a: Cell, cell_b: Cell,
                  host_a: int = 0, host_b: int = 0):
    """Re-run one mismatching pair with event capture forced on and
    return the first-divergence :class:`repro.diag.DivergenceReport`.

    Observation is obs-invariant (the observe matrix cells prove it
    every fuzz run), so forcing ``observe=True`` here reproduces the
    divergence while adding the trace coordinates needed to localize
    it.  Lazy import: the fuzz plane must not hard-depend on diag.
    """
    from ..diag import RunCapture, diff_captures

    captures = []
    for cell, host_index in ((cell_a, host_a), (cell_b, host_b)):
        observed = dataclasses.replace(cell, observe=True)
        result = DetTrace(observed.config()).run(
            build_image(spec), "/bin/fuzz",
            host=_host_for(spec.seed, host_index))
        label = cell.name if host_a == host_b else (
            "%s@host%d" % (cell.name, host_index))
        captures.append(RunCapture.from_result(result, label))
    return diff_captures(captures[0], captures[1])


def _check_ckpt_resume(spec: ProgramSpec, cell: Cell,
                       base: Dict[str, Any]) -> List[str]:
    """Axis 4: crash on a mid-run delta checkpoint, resume, compare.

    The straight base record doubles as the uninterrupted reference —
    the resume-identity contract says kill + resume must be
    indistinguishable from a run that was never interrupted (or even
    checkpointed).  The kill lands at half the program's event count
    with a barrier cadence that guarantees at least one snapshot first;
    ``full_every=3`` keeps dirty-tracked deltas (and therefore the
    chain-materialization path) on the fuzzed surface.
    """
    import shutil
    import tempfile

    from ..core.config import CheckpointConfig
    from ..faults.plan import FaultPlan, FaultRule

    events = int(base.get("totals", {}).get("events_processed", 0))
    if events < 8:
        return []  # too short to interrupt mid-run
    tick = events // 2
    directory = tempfile.mkdtemp(prefix="repro-fuzz-ckpt-")
    try:
        cfg = cell.config()
        cfg.checkpoint = CheckpointConfig(directory=directory,
                                          every=max(1, tick // 3), keep=0,
                                          full_every=3)
        cfg.fault_plan = FaultPlan(rules=(
            FaultRule(fault="kill", at_tick=tick, transient=True),))
        container = DetTrace(cfg)
        crashed = container.run(build_image(spec), "/bin/fuzz",
                                host=_host_for(spec.seed, 0))
        if crashed.status != CRASHED:
            return ["ckpt: kill at tick %d/%d did not crash (status=%s)"
                    % (tick, events, crashed.status)]
        try:
            resumed = container.resume(build_image(spec), "/bin/fuzz")
        except Exception as err:
            return ["ckpt: resume raised: %s: %s"
                    % (type(err).__name__, err)]
        if resumed.status != RESUMED:
            return ["ckpt: resumed run failed: status=%s exit=%r stderr=%r"
                    % (resumed.status, resumed.exit_code,
                       resumed.stderr[-200:])]
        record = _record("ckpt-resume", resumed)
        return ["ckpt: " + diff for diff in
                _diff_records(base, record, CKPT_INVARIANT_FIELDS)]
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def check_program(spec: ProgramSpec, workers: int = 2,
                  rnr: bool = True, ckpt: bool = True,
                  matrix: Optional[Tuple[Cell, ...]] = None,
                  diagnose: bool = False) -> MatrixReport:
    """Run *spec* across every axis; return the full report.

    *matrix* defaults to :data:`MATRIX`; tests substitute a matrix with
    a known-divergent cell to prove the harness detects differences.
    With *diagnose*, the first mismatching pair is re-run under the
    divergence differ and the report lands on ``MatrixReport.divergence``
    (two extra runs, so the shrinker keeps it off its predicate).
    """
    matrix = MATRIX if matrix is None else matrix
    failures: List[str] = []
    spec_dict = spec.to_dict()
    #: (cell_a, cell_b, host_a, host_b) of the first comparison mismatch.
    first_pair: Optional[Tuple[Cell, Cell, int, int]] = None

    # Axis 1: the cell matrix, serially.
    records = [run_cell(spec_dict, cell.to_dict()) for cell in matrix]
    base = records[0]
    if base["status"] != OK or base["exit_code"] != 0:
        failures.append("base run failed: status=%s exit=%r stderr=%r"
                        % (base["status"], base["exit_code"],
                           base["stderr"][-200:]))
    for rec in records:
        if rec["violations"]:
            failures.append("%s: %s" % (rec["cell"], rec["violations"][0]))
            break  # one oracle line is enough; cells agree or also fail below
    for position, other in enumerate(records[1:], start=1):
        diffs = _diff_records(base, other, COMPARED_FIELDS)
        failures.extend(diffs)
        if diffs and first_pair is None:
            first_pair = (matrix[0], matrix[position], 0, 0)
    observed = [r for r in records if r["trace"] is not None]
    for other in observed[1:]:
        if other["trace"] != observed[0]["trace"]:
            failures.append("%s!=%s on 'trace'" % (observed[0]["cell"],
                                                   other["cell"]))
            if first_pair is None:
                by_name = {cell.name: cell for cell in matrix}
                first_pair = (by_name[observed[0]["cell"]],
                              by_name[other["cell"]], 0, 0)

    # Axis 1b: same knobs, different hosts — guest-visible surface only.
    for host_index in (1, 2):
        rec = run_cell(spec_dict, matrix[0].to_dict(), host_index=host_index)
        host_diffs = _diff_records(base, rec, HOST_INVARIANT_FIELDS)
        for failure in host_diffs:
            failures.append("host%d: %s" % (host_index, failure))
        if host_diffs and first_pair is None:
            first_pair = (matrix[0], matrix[0], 0, host_index)

    # Axis 2: the same cells through the parallel fan-out.  Exact record
    # equality — fan-out must be a pure reordering of serial execution.
    if workers > 1:
        jobs = [Job(key=i, fn=run_cell, args=(spec_dict, cell.to_dict()))
                for i, cell in enumerate(matrix)]
        try:
            pooled = [rec for _k, rec in run_jobs(jobs, workers=workers)]
        except Exception as err:
            failures.append("parallel axis raised: %s: %s"
                            % (type(err).__name__, err))
        else:
            for serial_rec, pooled_rec in zip(records, pooled):
                if serial_rec != pooled_rec:
                    failures.append("serial!=parallel on cell %r"
                                    % serial_rec["cell"])

    # Axis 3: record natively, replay on a different boot.
    if rnr and not spec.uses_threads() and spec.rnr_compatible():
        failures.extend(_check_rnr(spec))

    # Axis 4: kill mid-run on a delta checkpoint, resume, compare
    # against the straight base record.  Only meaningful when the base
    # run itself succeeded (a failing base already reported above).
    if ckpt and base["status"] == OK:
        failures.extend(_check_ckpt_resume(spec, matrix[0], base))

    divergence = None
    if diagnose and failures and first_pair is not None:
        cell_a, cell_b, host_a, host_b = first_pair
        divergence = diagnose_pair(spec, cell_a, cell_b,
                                   host_a=host_a, host_b=host_b)
    return MatrixReport(spec=spec, records=records, failures=failures,
                        divergence=divergence)


def _check_rnr(spec: ProgramSpec) -> List[str]:
    from .. import rnr as rnr_mod

    image = build_image(spec)
    host_a = HostEnvironment(entropy_seed=spec.seed * 13 + 5,
                             boot_epoch=1.61e9)
    host_b = HostEnvironment(entropy_seed=spec.seed * 17 + 11,
                             boot_epoch=1.93e9, pid_start=4000,
                             inode_start=777_000, dirent_hash_salt=99)
    rec = rnr_mod.record(image, "/bin/fuzz", host=host_a)
    if rec.status != "ok":
        return ["rnr record failed: %s %s" % (rec.status, rec.error)]
    try:
        rnr_mod.replay(build_image(spec), "/bin/fuzz", rec.recording,
                       host=host_b)
    except Exception as err:
        return ["rnr replay diverged: %s: %s" % (type(err).__name__, err)]
    return []
