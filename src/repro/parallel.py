"""Deterministic fan-out of independent container runs.

DetTrace determinizes *within* a container; across containers there is
nothing to serialize — every run is a pure function of (image, config,
host), so N runs can execute on N worker processes and must produce
byte-identical results to the same N runs executed serially.  This
module is that fan-out: the §7 package sweeps, reprotest double-builds
and ``repro run --jobs N`` all funnel through :func:`run_jobs`.

Determinism contract:

* results are collected **ordered by job key**, never by completion
  order — a worker pool's racy finish order is invisible to callers;
* a worker exception does not tear down the pool non-deterministically:
  every job still runs, then the error belonging to the *smallest key*
  is re-raised (exactly the error serial execution would have hit
  first);
* ``workers=1`` takes a plain in-process loop, so serial-vs-parallel
  identity tests compare genuinely different execution paths.

Job functions and their arguments must be picklable (module-level
functions, dataclass/primitive arguments) because workers are separate
processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pickle
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class WorkerError(Exception):
    """Picklable carrier for a worker exception that cannot itself cross
    the process boundary.

    Exceptions with custom ``__init__`` signatures (e.g. the kernel's
    ``SyscallError(errno, syscall)``) pickle but explode on *unpickle*,
    which would crash ``pool.map`` at a completion-order-dependent
    moment — a non-deterministic teardown.  Such errors are converted to
    this carrier *in the worker*, preserving the original type name,
    message, errno (when present) and formatted traceback.  The same
    conversion runs on the serial path so the raised error is a pure
    function of the jobs, never of the worker count.
    """

    def __init__(self, type_name: str, message: str, errno: int = 0,
                 tb: str = ""):
        self.type_name = type_name
        self.message = message
        self.errno = errno
        self.tb = tb
        super().__init__("%s: %s" % (type_name, message))

    def __reduce__(self):
        return (WorkerError, (self.type_name, self.message, self.errno,
                              self.tb))

    def format_traceback(self) -> str:
        return self.tb


def _sanitize_error(err: BaseException) -> BaseException:
    """Return *err* if it survives a pickle round-trip, else a carrier.

    The round-trip includes ``loads``: pickling an exception succeeds for
    almost anything (the default reduce stores ``args``), but rebuilding
    it calls ``type(err)(*args)``, which fails for custom signatures.
    """
    try:
        rebuilt = pickle.loads(pickle.dumps(err))
        if type(rebuilt) is type(err):
            return err
    except Exception:
        pass
    return WorkerError(
        type_name=type(err).__name__,
        message=str(err),
        errno=int(getattr(err, "errno", 0) or 0),
        tb="".join(traceback.format_exception(type(err), err,
                                              err.__traceback__)))


@dataclasses.dataclass(frozen=True)
class Job:
    """One independent unit of work.

    ``key`` orders the results (and error precedence) deterministically;
    it must be sortable and unique within one :func:`run_jobs` call.
    """

    key: Any
    fn: Callable
    args: Tuple = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)


def _execute(job: Job) -> Tuple[Any, str, Any]:
    """Worker trampoline: never raises, so pool teardown stays orderly.

    Errors are sanitized *here* — before the result crosses the process
    boundary — so an unpicklable exception can never detonate inside
    ``pool.map``'s result plumbing (which would tear the pool down at a
    completion-order-dependent point).  The serial path runs the same
    sanitizer, keeping the raised error independent of worker count.
    """
    try:
        return (job.key, "ok", job.fn(*job.args, **job.kwargs))
    except BaseException as err:  # re-raised deterministically by caller
        return (job.key, "err", _sanitize_error(err))


def default_workers() -> int:
    """A sensible worker count for --jobs 0 ("auto")."""
    return max(1, min(8, os.cpu_count() or 1))


def effective_host_cores() -> int:
    """Cores this process may actually run on.

    Prefers the scheduler affinity mask (a cgroup/taskset-restricted
    host may expose 64 CPUs but allow 1), falling back to the raw CPU
    count where unavailable.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _state_path(directory: str, key: Any) -> str:
    """The per-key completion file inside a resume-state directory."""
    return os.path.join(
        directory, hashlib.sha1(repr(key).encode("utf-8")).hexdigest() + ".done")


def _persist_result(directory: str, key: Any, result: Any) -> None:
    """Atomically record a completed job (write-temp-then-rename, same
    crash-consistency discipline as the checkpoint journal)."""
    final = _state_path(directory, key)
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, final)
    except Exception:
        # Persistence is best-effort: a failure merely means this key
        # recomputes on the next resume.
        try:
            os.remove(tmp)
        except OSError:
            pass


def _load_completed(directory: str, ordered: Sequence[Job]) -> Dict[str, Any]:
    """Previously completed results keyed by ``repr(key)``; unreadable
    files are ignored (the key just recomputes)."""
    done: Dict[str, Any] = {}
    for job in ordered:
        path = _state_path(directory, job.key)
        if not os.path.exists(path):
            continue
        try:
            with open(path, "rb") as fh:
                done[repr(job.key)] = pickle.load(fh)
        except Exception:
            pass
    return done


def run_jobs(jobs: Sequence[Job], workers: int = 1,
             timeout: Optional[float] = None,
             resume_state: Optional[str] = None) -> List[Tuple[Any, Any]]:
    """Run every job; return ``[(key, result), ...]`` sorted by key.

    The returned list — and any exception raised — is a pure function of
    the jobs themselves, independent of *workers*.

    *timeout* bounds each job's host-time execution, on the serial path
    and the pool path alike (a hung job is abandoned in its worker
    process and surfaces as a ``WorkerError`` with type ``JobTimeout``,
    raised with the usual smallest-key precedence).  With a timeout even
    ``workers=1`` runs jobs in a single-process pool — the only way to
    abandon a hung call.

    *resume_state* names a directory recording completed jobs: keys with
    a recorded result are not re-run, and each newly completed (ok) key
    is persisted atomically, so an interrupted fan-out resumes with only
    its incomplete keys.
    """
    ordered = sorted(jobs, key=lambda j: j.key)
    keys = [j.key for j in ordered]
    if len(set(map(repr, keys))) != len(keys):
        raise ValueError("job keys must be unique: %r" % (keys,))
    done: Dict[str, Any] = {}
    if resume_state is not None:
        os.makedirs(resume_state, exist_ok=True)
        done = _load_completed(resume_state, ordered)
    pending = [job for job in ordered if repr(job.key) not in done]
    workers = max(1, min(int(workers), len(pending) or 1))
    if timeout is None and workers > 1 and effective_host_cores() == 1:
        # Forking a pool on a single effective core only adds process
        # setup and context-switch overhead (speedup < 1 in practice);
        # the serial loop produces identical, key-ordered results by
        # contract, so fall back.  Timeouts still need the pool: a hung
        # job can only be abandoned in a worker process.
        workers = 1
    if timeout is None and workers == 1:
        # The plain in-process loop: serial-vs-parallel identity tests
        # compare genuinely different execution paths.
        outcomes = [_execute(job) for job in pending]
    else:
        # fork is the bake-in on Linux and keeps job functions' module
        # state (registered binaries, images) available without re-import.
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            if timeout is None:
                # map() preserves input order, so completion races never
                # reach us; chunksize=1 keeps long jobs load-balanced.
                outcomes = pool.map(_execute, pending, chunksize=1)
            else:
                handles = [(job, pool.apply_async(_execute, (job,)))
                           for job in pending]
                outcomes = []
                for job, handle in handles:
                    try:
                        outcomes.append(handle.get(timeout))
                    except multiprocessing.TimeoutError:
                        outcomes.append((job.key, "err", WorkerError(
                            "JobTimeout",
                            "job %r exceeded %.3fs" % (job.key, timeout))))
                # Leaving the with-block terminates any still-hung worker.
    if resume_state is not None:
        for key, tag, payload in outcomes:
            if tag == "ok":
                _persist_result(resume_state, key, payload)
    for key, tag, payload in outcomes:  # smallest key first, as serial would
        if tag == "err":
            raise payload
    results = dict(done)
    for key, tag, payload in outcomes:
        results[repr(key)] = payload
    return [(job.key, results[repr(job.key)]) for job in ordered]


def fan_out(fn: Callable, arg_tuples: Sequence[Tuple], workers: int = 1) -> List[Any]:
    """Convenience wrapper: ``[fn(*args) for args in arg_tuples]`` with
    *workers* processes; results in input order."""
    jobs = [Job(key=i, fn=fn, args=tuple(args))
            for i, args in enumerate(arg_tuples)]
    return [result for _key, result in run_jobs(jobs, workers=workers)]


def cache_tally(records: Sequence[Any]) -> Dict[str, int]:
    """Run-cache disposition counts across fan-out *records*.

    Accepts the record shapes the sweeps produce — dicts carrying a
    ``"cache"`` sub-record or objects with a ``.cache`` attribute
    (:class:`~repro.core.container.ContainerResult` included) — and
    ignores records that carried no cache at all, so callers can apply
    it unconditionally.  Shared by ``repro run --repeat`` and the cache
    benchmark to report hit/store breakdowns.
    """
    tally: Dict[str, int] = {}
    for rec in records:
        cache = (rec.get("cache") if isinstance(rec, dict)
                 else getattr(rec, "cache", None))
        if not cache:
            continue
        outcome = cache.get("outcome", "?")
        tally[outcome] = tally.get(outcome, 0) + 1
    return tally
