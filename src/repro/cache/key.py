"""Run keys: the content address of one container run.

DetTrace's thesis makes a container run a *pure function* of its
inputs: the initial filesystem state (the image), the container
configuration, the program and its argv/environment, and — for the few
surfaces a config may deliberately leave un-determinized — the machine
the run executes on.  :func:`run_key` hashes exactly those inputs into
one sha256 digest, the address under which ``repro.cache`` memoizes the
run's outcome.

Key composition (the DESIGN "Cache invariants" contract):

* **image fingerprint** — a Merkle root over the image's installed
  tree (per-inode leaves covering kind/mode/uid/gid and content or
  symlink target; one interior node per directory over its name-sorted
  children — the same shape as :mod:`repro.ckpt.merkle`), composed with
  digests of every registered guest binary (hashed structurally through
  its code object, so editing a guest program moves the key) and every
  published download URL body.  The image is installed into a throwaway
  kernel under a *pinned canonical host*, so nothing host-jittered
  (boot epochs, inode bases) can leak into the fingerprint.
* **config fingerprint** — :meth:`ContainerConfig.fingerprint`, which
  already covers every determinism-relevant knob and excludes the
  operational ones (``checkpoint``, ``cache``).
* **program coordinates** — the command path, argv vector and the
  exact environment the guest will see (``config.env_for``).
* **host component** — the machine spec name always (identity files
  like ``/etc/hostname`` may be un-canonicalized by config); when any
  determinism mechanism is ablated the run may genuinely depend on the
  boot, so the *full* host identity joins the key and distinct boots
  simply never collide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional

from ..core.config import ContainerConfig
from ..cpu.machine import HostEnvironment

#: Bumped whenever key composition changes incompatibly: old entries
#: become unreachable instead of wrongly hit.
KEY_SCHEMA = 1

#: Config toggles whose *disabling* can let host identity reach the
#: output surface; with any of these off the full host identity joins
#: the run key (conservative: distinct boots never share an entry).
_DETERMINISM_TOGGLES = (
    "virtualize_time", "patch_vdso", "deterministic_randomness",
    "virtualize_inodes", "sort_getdents", "deterministic_dir_sizes",
    "deterministic_pids", "map_user_to_root", "serialize_threads",
    "trap_rdtsc", "mask_cpuid", "mask_machine", "disable_aslr",
    "canonical_env", "emulate_timers",
)


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _code_fingerprint(fn: Any, _depth: int = 0) -> str:
    """Structural digest of a callable's code object.

    Recurses into nested code objects (``repr`` of a code object embeds
    a memory address, so it must never be hashed directly); constants
    and names are covered by repr, which is stable for the plain-data
    constants guest programs use.  Falls back to the qualified name for
    builtins/callables without code.
    """
    code = getattr(fn, "__code__", None)
    if code is None or _depth > 8:
        return _sha(repr(getattr(fn, "__qualname__", fn)).encode())
    h = hashlib.sha256()
    h.update(code.co_code)
    h.update(repr(code.co_names).encode())
    h.update(repr(code.co_varnames).encode())
    h.update(repr(code.co_argcount).encode())
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            h.update(_code_fingerprint_code(const, _depth + 1).encode())
        else:
            h.update(repr(const).encode())
    # functools.partial-style bindings and closures carry run-relevant
    # parameters; cover their reprs (plain-data by convention).
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            contents = cell.cell_contents
            if callable(contents):
                h.update(_code_fingerprint(contents, _depth + 1).encode())
            else:
                h.update(repr(contents).encode())
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        h.update(repr(defaults).encode())
    return h.hexdigest()


def _code_fingerprint_code(code: Any, _depth: int) -> str:
    """Digest of a raw code object (recursion helper)."""
    h = hashlib.sha256()
    h.update(code.co_code)
    h.update(repr(code.co_names).encode())
    h.update(repr(code.co_varnames).encode())
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            if _depth <= 8:
                h.update(_code_fingerprint_code(const, _depth + 1).encode())
        else:
            h.update(repr(const).encode())
    return h.hexdigest()


def _tree_node_digest(node) -> str:
    """Merkle digest of one installed inode subtree.

    Leaf = (kind, mode, uid, gid, content-or-target); directory =
    (leaf, sorted (name, child-digest) sequence).  Timestamps and inode
    numbers are excluded — under the pinned canonical host they are
    stable anyway, but they are not image *content*.
    """
    h = hashlib.sha256()
    h.update(("leaf|%s|%o|%d|%d|" % (node.kind.name, node.mode & 0o7777,
                                     node.uid, node.gid)).encode())
    if node.is_regular:
        h.update(bytes(node.data))
    elif node.kind.name == "SYMLINK":
        h.update(node.symlink_target.encode())
    leaf = h.hexdigest()
    if not node.is_dir:
        return leaf
    h = hashlib.sha256()
    h.update(("dir|" + leaf).encode())
    for name in sorted(node.entries):
        h.update(name.encode())
        h.update(_tree_node_digest(node.entries[name]).encode())
    return h.hexdigest()


def image_fingerprint(image, working_dir: str = "/build") -> str:
    """Merkle fingerprint of *image*: installed tree + binaries + urls.

    Installs into a throwaway kernel under a pinned canonical host so
    the digest is a pure function of the image itself.
    """
    from ..kernel.kernel import Kernel

    canonical = HostEnvironment(entropy_seed=0, boot_epoch=0.0,
                                pid_start=1, inode_start=1,
                                dirent_hash_salt=0)
    kernel = Kernel(canonical)
    image.install(kernel, working_dir)
    h = hashlib.sha256()
    h.update(b"image|")
    h.update(_tree_node_digest(kernel.fs.root).encode())
    for path in sorted(image.registry._programs):
        h.update(path.encode())
        h.update(_code_fingerprint(image.registry._programs[path]).encode())
    for url in sorted(image._urls):
        h.update(url.encode())
        h.update(_sha(image._urls[url]).encode())
    for fn in image._setup_fns:
        h.update(_code_fingerprint(fn).encode())
    return h.hexdigest()


def _host_component(config: ContainerConfig,
                    host: HostEnvironment) -> Dict[str, Any]:
    component: Dict[str, Any] = {"machine": host.machine.name}
    if not all(getattr(config, name) for name in _DETERMINISM_TOGGLES):
        # An ablated run may observe the boot: key on all of it.
        component.update({
            "boot_epoch": host.boot_epoch,
            "entropy_seed": host.entropy_seed,
            "pid_start": host.pid_start,
            "inode_start": host.inode_start,
            "dirent_hash_salt": host.dirent_hash_salt,
        })
    return component


@dataclasses.dataclass(frozen=True)
class RunKey:
    """The content address of one (image, config, program, host) run."""

    digest: str
    components: Dict[str, Any] = dataclasses.field(default_factory=dict,
                                                   hash=False, compare=False)

    def __str__(self) -> str:
        return self.digest


def run_key(image, config: ContainerConfig, command: str,
            argv: Optional[List[str]], host: HostEnvironment) -> RunKey:
    """Compute the :class:`RunKey` for ``DetTrace(config).run(image,
    command, argv, host)``."""
    components = {
        "schema": KEY_SCHEMA,
        "image": image_fingerprint(image, config.working_dir),
        "config": config.fingerprint(),
        "command": command,
        "argv": list(argv) if argv is not None else [command],
        "env": config.env_for(host.env),
        "host": _host_component(config, host),
    }
    blob = json.dumps(components, sort_keys=True).encode("utf-8")
    return RunKey(digest=_sha(blob), components=components)
