"""The content-addressed store behind ``repro.cache``.

Layout, under one cache directory::

    keys/<run-key digest>.key       one JSON line: a pointer record
    objects/<payload sha256>.obj    <header JSON>\\n<payload bytes>

A *key file* maps a :class:`~repro.cache.key.RunKey` digest to the
sha256 of the payload holding its outcome; an *object file* stores the
pickled :class:`~repro.cache.outcome.CachedOutcome` under its own
content hash.  Splitting the two gives structural dedup for free —
distinct keys whose runs produced identical outcomes share one object —
and makes every payload self-verifying.

Durability discipline is the checkpoint journal's: every file is
written to a dot-tmp name in its final directory, fsynced, atomically
renamed, and the directory fsynced (:func:`repro.ckpt.journal.fsync_dir`).
A crash mid-store leaves a tmp file the reader ignores; a torn or
bit-rotted entry is *detected* (length/checksum/format mismatch) and
reads as a miss, never as a wrong hit.  ``gc`` removes torn files and
unreferenced objects, counting a refcount per object from the key files
that name it — the same detect-and-drop posture as journal ``prune``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from ..ckpt.journal import fsync_dir
from .key import RunKey
from .outcome import CachedOutcome

#: On-disk format version for both key and object files; bumped on any
#: incompatible change so old entries miss instead of mis-hitting.
STORE_FORMAT = 1

_KEY_SUFFIX = ".key"
_OBJ_SUFFIX = ".obj"


class CacheEntryError(ValueError):
    """A cache file is torn, corrupt, or from an incompatible format."""


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(directory, ".tmp-" + os.path.basename(path))
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.rename(tmp, path)
    fsync_dir(directory)


@dataclasses.dataclass
class StoreStats:
    """``repro cache stats`` payload."""

    directory: str
    keys: int = 0
    objects: int = 0
    object_bytes: int = 0
    #: Keys whose object is shared with at least one other key.
    deduplicated_keys: int = 0
    torn_keys: int = 0
    torn_objects: int = 0
    unreferenced_objects: int = 0
    missing_objects: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class CacheStore:
    """One on-disk content-addressed run cache."""

    def __init__(self, directory: str):
        self.directory = directory
        self.keys_dir = os.path.join(directory, "keys")
        self.objects_dir = os.path.join(directory, "objects")

    # -- paths ---------------------------------------------------------

    def key_path(self, digest: str) -> str:
        return os.path.join(self.keys_dir, digest + _KEY_SUFFIX)

    def object_path(self, sha256: str) -> str:
        return os.path.join(self.objects_dir, sha256 + _OBJ_SUFFIX)

    # -- write ---------------------------------------------------------

    def put(self, key: RunKey, outcome: CachedOutcome) -> str:
        """Store *outcome* under *key*; returns the object sha256.

        Object first, key second: a crash between the two leaves an
        unreferenced object (gc fodder), never a dangling key.
        """
        payload = pickle.dumps(outcome.to_payload(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        sha256 = _sha(payload)
        obj_path = self.object_path(sha256)
        # Dedup: an existing object with this address already holds these
        # bytes — but only trust it after validation, else a torn file
        # squatting on the address would pin the key to garbage forever.
        reusable = False
        if os.path.exists(obj_path):
            try:
                self._read_object(sha256)
                reusable = True
            except CacheEntryError:
                reusable = False
        if not reusable:
            header = json.dumps({
                "format": STORE_FORMAT,
                "kind": "outcome",
                "payload_len": len(payload),
                "payload_sha256": sha256,
            }, sort_keys=True).encode("utf-8")
            _atomic_write(obj_path, header + b"\n" + payload)
        record = json.dumps({
            "format": STORE_FORMAT,
            "kind": "run-key",
            "run_key": key.digest,
            "payload_sha256": sha256,
        }, sort_keys=True).encode("utf-8")
        _atomic_write(self.key_path(key.digest), record + b"\n")
        return sha256

    # -- read ----------------------------------------------------------

    def _read_key_record(self, path: str) -> Dict[str, Any]:
        with open(path, "rb") as fh:
            line = fh.readline(1 << 20)
        if not line.endswith(b"\n"):
            raise CacheEntryError("%s: truncated key record" % path)
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise CacheEntryError("%s: unparsable key record: %s" % (path, err))
        if (not isinstance(record, dict)
                or record.get("format") != STORE_FORMAT
                or record.get("kind") != "run-key"
                or not isinstance(record.get("payload_sha256"), str)):
            raise CacheEntryError("%s: not a format-%d run-key record"
                                  % (path, STORE_FORMAT))
        return record

    def _read_object(self, sha256: str) -> bytes:
        path = self.object_path(sha256)
        try:
            with open(path, "rb") as fh:
                line = fh.readline(1 << 20)
                payload = fh.read()
        except OSError as err:
            raise CacheEntryError("%s: unreadable: %s" % (path, err))
        if not line.endswith(b"\n"):
            raise CacheEntryError("%s: truncated header" % path)
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise CacheEntryError("%s: unparsable header: %s" % (path, err))
        if (not isinstance(header, dict)
                or header.get("format") != STORE_FORMAT):
            raise CacheEntryError("%s: not a format-%d object" % (path,
                                                                  STORE_FORMAT))
        if header.get("payload_len") != len(payload):
            raise CacheEntryError("%s: payload length %d != header %r "
                                  "(torn write?)"
                                  % (path, len(payload),
                                     header.get("payload_len")))
        if _sha(payload) != header.get("payload_sha256") or _sha(payload) != sha256:
            raise CacheEntryError("%s: payload checksum mismatch" % path)
        return payload

    def get(self, key: RunKey) -> Optional[CachedOutcome]:
        """Look *key* up; torn/corrupt entries read as a miss (None)."""
        path = self.key_path(key.digest)
        if not os.path.exists(path):
            return None
        try:
            record = self._read_key_record(path)
            payload = self._read_object(record["payload_sha256"])
            outcome = CachedOutcome.from_payload(pickle.loads(payload))
        except (CacheEntryError, pickle.UnpicklingError, TypeError,
                EOFError, AttributeError):
            return None
        if outcome.version != CachedOutcome.version:
            return None
        return outcome

    def contains(self, key: RunKey) -> bool:
        return self.get(key) is not None

    # -- maintenance ---------------------------------------------------

    def _listdir(self, directory: str, suffix: str) -> List[str]:
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return sorted(n for n in names
                      if n.endswith(suffix) and not n.startswith("."))

    def _survey(self) -> Tuple[StoreStats, List[str], Dict[str, int]]:
        """One pass over the store: stats + torn paths + object refcounts."""
        stats = StoreStats(directory=self.directory)
        torn: List[str] = []
        refcounts: Dict[str, int] = {}
        for name in self._listdir(self.objects_dir, _OBJ_SUFFIX):
            sha256 = name[:-len(_OBJ_SUFFIX)]
            path = self.object_path(sha256)
            try:
                payload = self._read_object(sha256)
            except CacheEntryError:
                stats.torn_objects += 1
                torn.append(path)
                continue
            stats.objects += 1
            stats.object_bytes += len(payload)
            refcounts[sha256] = 0
        for name in self._listdir(self.keys_dir, _KEY_SUFFIX):
            path = os.path.join(self.keys_dir, name)
            try:
                record = self._read_key_record(path)
            except CacheEntryError:
                stats.torn_keys += 1
                torn.append(path)
                continue
            sha256 = record["payload_sha256"]
            if sha256 not in refcounts:
                # Dangling pointer: treat like a torn key (gc removes it).
                stats.missing_objects += 1
                torn.append(path)
                continue
            stats.keys += 1
            refcounts[sha256] += 1
        stats.deduplicated_keys = sum(n for n in refcounts.values() if n > 1)
        stats.unreferenced_objects = sum(
            1 for n in refcounts.values() if n == 0)
        return stats, torn, refcounts

    def stats(self) -> StoreStats:
        return self._survey()[0]

    def gc(self) -> Dict[str, List[str]]:
        """Remove torn files, dangling keys and unreferenced objects.

        Returns ``{"torn": [...], "unreferenced": [...]}`` (paths
        removed).  Also sweeps leftover dot-tmp files from interrupted
        writes.
        """
        _stats, torn, refcounts = self._survey()
        unreferenced = [self.object_path(sha256)
                        for sha256, n in sorted(refcounts.items()) if n == 0]
        removed: Dict[str, List[str]] = {"torn": [], "unreferenced": []}
        for bucket, paths in (("torn", torn), ("unreferenced", unreferenced)):
            for path in paths:
                try:
                    os.remove(path)
                    removed[bucket].append(path)
                except OSError:
                    pass
        for directory in (self.keys_dir, self.objects_dir):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if name.startswith(".tmp-"):
                    try:
                        os.remove(os.path.join(directory, name))
                        removed["torn"].append(os.path.join(directory, name))
                    except OSError:
                        pass
            if removed["torn"] or removed["unreferenced"]:
                fsync_dir(directory)
        return removed

    def verify_store(self) -> List[str]:
        """Checksum-validate every entry; returns problem descriptions."""
        problems: List[str] = []
        stats, torn, _refcounts = self._survey()
        problems.extend("torn or corrupt: %s" % path for path in torn)
        if stats.unreferenced_objects:
            problems.append("%d unreferenced object(s) (run gc)"
                            % stats.unreferenced_objects)
        return problems
