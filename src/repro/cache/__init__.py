"""repro.cache — content-addressed memoization of container runs.

DetTrace makes a run a pure function of (image, config, program, host);
this package makes that purity *pay rent*: hash the inputs into a
:class:`RunKey`, store the captured outcome in an on-disk CAS, and
serve later identical runs from the cache with zero guest execution.
``--cache=verify`` inverts the bet — always re-execute, byte-compare
against the entry, and report any mismatch through the divergence
diagnosis engine.

See DESIGN.md "Cache invariants" for the key-composition and
durability contract.
"""

from __future__ import annotations

from typing import List, Optional

from .key import KEY_SCHEMA, RunKey, image_fingerprint, run_key
from .outcome import OUTCOME_VERSION, CachedOutcome
from .store import (
    STORE_FORMAT,
    CacheEntryError,
    CacheStore,
    StoreStats,
)

#: Valid ``CacheConfig.mode`` values, in escalating-trust order.
CACHE_MODES = ("off", "read", "write", "verify")


class RunCache:
    """Facade tying key computation to one :class:`CacheStore`.

    The container core and the CLI both speak through this: ``key_for``
    computes the content address of a prospective run, ``lookup`` reads
    (torn entries are misses), ``store_result`` captures and writes a
    finished result — refusing anything but a clean ``ok`` run, so a
    transient failure can never become sticky.
    """

    def __init__(self, directory: str):
        self.store = CacheStore(directory)

    @property
    def directory(self) -> str:
        return self.store.directory

    def key_for(self, image, config, command: str,
                argv: Optional[List[str]], host) -> RunKey:
        return run_key(image, config, command, argv, host)

    def lookup(self, key: RunKey) -> Optional[CachedOutcome]:
        return self.store.get(key)

    def store_result(self, key: RunKey, result) -> Optional[str]:
        """Capture *result* under *key*; None when it is not cacheable."""
        if result.status != "ok":
            return None
        return self.store.put(key, CachedOutcome.capture(result))


__all__ = [
    "CACHE_MODES",
    "CacheEntryError",
    "CacheStore",
    "CachedOutcome",
    "KEY_SCHEMA",
    "OUTCOME_VERSION",
    "RunCache",
    "RunKey",
    "STORE_FORMAT",
    "StoreStats",
    "image_fingerprint",
    "run_key",
]
