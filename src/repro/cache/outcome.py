"""The cached outcome of one run: everything a hit must reproduce.

A :class:`CachedOutcome` is the plain-data reduction of a successful
:class:`~repro.core.container.ContainerResult` — artifact tree, stream
bytes, exit status, deterministic metrics, content digests and the
optional Chrome trace JSON.  ``capture`` reduces a live result;
``to_result`` rebuilds a result a caller cannot tell from a fresh run
on every reproducible surface (jitter-bearing fields — host wall time,
fs-cache hit counts — are deliberately *not* reproduced; they were
never part of the deterministic contract).

Only ``status == "ok"`` runs are cacheable: a classified failure is
reproducible too, but memoizing failures turns every transient
environment problem into a sticky one.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional

from ..repro_tools.hashing import tree_digest

#: Payload schema version inside cache objects.
OUTCOME_VERSION = 1


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclasses.dataclass
class CachedOutcome:
    """Plain-data image of one successful run."""

    status: str
    exit_code: Optional[int]
    error: str
    stdout: str
    stderr: str
    output_tree: Dict[str, bytes]
    syscall_count: int
    wall_time: float
    #: ``Metrics.to_dict()`` with the ``cache/`` disposition counters
    #: stripped (they describe the *lookup*, not the run).
    metrics: Optional[Dict[str, Any]] = None
    #: Chrome trace JSON when the producing run observed; None otherwise.
    trace_json: Optional[str] = None
    #: Content digests, precomputed so verify mode and stats never need
    #: to rehash the payload: tree digest + per-stream sha256.
    digests: Dict[str, str] = dataclasses.field(default_factory=dict)
    version: int = OUTCOME_VERSION

    @classmethod
    def capture(cls, result) -> "CachedOutcome":
        """Reduce a ContainerResult (pure observation, never mutates)."""
        metrics = None
        if result.metrics is not None:
            metrics = result.metrics.to_dict()
            metrics["counters"] = {
                name: n for name, n in metrics.get("counters", {}).items()
                if not name.startswith("cache/")}
        trace_json = None
        if result.trace is not None:
            trace_json = result.trace.to_json()
        return cls(
            status=result.status,
            exit_code=result.exit_code,
            error=result.error,
            stdout=result.stdout,
            stderr=result.stderr,
            output_tree={path: bytes(data)
                         for path, data in sorted(result.output_tree.items())},
            syscall_count=result.syscall_count,
            wall_time=result.wall_time,
            metrics=metrics,
            trace_json=trace_json,
            digests={
                "tree": tree_digest(result.output_tree),
                "stdout_sha256": _sha(result.stdout.encode()),
                "stderr_sha256": _sha(result.stderr.encode()),
            })

    def to_result(self, host):
        """Rebuild a ContainerResult for a cache hit.

        ``counters`` and ``trace`` are not rehydrated (the tracer
        objects belong to a live run); deterministic metrics are.
        """
        from ..core.container import ContainerResult
        from ..obs.metrics import Metrics

        metrics = (Metrics.from_dict(self.metrics)
                   if self.metrics is not None else None)
        return ContainerResult(
            status=self.status,
            exit_code=self.exit_code,
            error=self.error,
            stdout=self.stdout,
            stderr=self.stderr,
            output_tree={path: bytes(data)
                         for path, data in self.output_tree.items()},
            counters=None,
            syscall_count=self.syscall_count,
            wall_time=self.wall_time,
            host=host,
            metrics=metrics,
        )

    # -- verify-mode comparison ----------------------------------------

    def compare_surfaces(self, result) -> List[str]:
        """Byte-compare the cached entry against a fresh *result*.

        Returns the names of the surfaces that differ (empty = clean):
        the independent-rebuild check of verify mode.
        """
        differing: List[str] = []
        if (self.status, self.exit_code) != (result.status, result.exit_code):
            differing.append("exit")
        fresh_tree = {path: bytes(data)
                      for path, data in result.output_tree.items()}
        if self.output_tree != fresh_tree:
            differing.append("tree")
        if self.stdout != result.stdout:
            differing.append("stdout")
        if self.stderr != result.stderr:
            differing.append("stderr")
        return differing

    def to_payload(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CachedOutcome":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
